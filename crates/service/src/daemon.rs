//! The continuous-tuning daemon: ingestion thread → bounded queue →
//! aggregation/tuning loop, with checkpointing and graceful shutdown.
//!
//! The reader thread parses and validates lines, counting invalid ones,
//! and pushes valid events and `checkpoint` controls onto the queue so
//! they stay ordered with the surrounding events. Interactive `whatif`
//! and `tenant` controls ride the queue the same way — as barrier items
//! answered from the live [`crate::Arbiter`] once every event queued
//! before them has been consumed. EOF or a `shutdown` control closes the
//! queue; the consumer then drains every remaining event, tunes any
//! epochs that seal while draining, writes a final checkpoint, and
//! returns a [`ServiceReport`].
//!
//! [`offline_snapshots`] + [`offline_adapt`] are the pure reference
//! implementations the replay determinism contract is checked against:
//! feeding a recorded log through the daemon with
//! [`crate::DriftThresholds::always_adapt`] produces exactly the
//! selection sequence of `dynamic::adapt` over [`offline_snapshots`] of
//! the same log.

use crate::arbiter::{global_budget, Arbiter, PendingQuery};
use crate::checkpoint::Checkpoint;
use crate::config::ServiceConfig;
use crate::event::{parse_line, Control, InputLine, ObservedEvent};
use crate::feedback::{self, GroupFeedback};
use crate::frame::WireItem;
use crate::queue::BoundedQueue;
use crate::records::{DecodeDict, Record, RecordIter};
use crate::status::{take_status_signal, StatusBoard};
use crate::tuner::{EpochOutcome, Tuner};
use crate::window::EpochWindow;
use isel_core::{budget, dynamic, Parallelism, Selection, Trace};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::{Query, Schema, Workload};
use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What happens when the ingestion queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Producer waits — lossless; required for deterministic replay.
    Block,
    /// Oldest queued event is evicted (counted) — live serving.
    DropOldest,
}

/// Work items flowing through the queue.
pub(crate) enum WorkItem {
    Query(Query),
    /// An observed-cost probe for the feedback tracker.
    Observed(ObservedEvent),
    Checkpoint,
    /// An interactive query queued as an in-band barrier: answered once
    /// every event queued before it has been consumed.
    Interactive(Arc<PendingQuery>),
}

/// Verdict of ingesting one line.
pub(crate) enum Ingest {
    /// Keep reading.
    Continue,
    /// A `shutdown` control arrived: stop ingesting, drain, finish.
    Shutdown,
    /// A `status` control arrived — out of band; the caller renders the
    /// board line (stderr for stdin readers, back on the wire for
    /// socket connections) without queuing anything.
    Status,
    /// An interactive `whatif`/`tenant` control arrived — the caller
    /// queues it as an in-band barrier item and routes the reply.
    Interactive(Control),
}

/// Summary of one daemon run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Outcome of every epoch tuned during this run, in order.
    pub epochs: Vec<EpochOutcome>,
    /// Valid query events ingested (lifetime total, including epochs
    /// restored from a checkpoint).
    pub ingested: u64,
    /// Invalid input lines skipped (lifetime total).
    pub invalid: u64,
    /// Events dropped under overload (lifetime total).
    pub dropped: u64,
    /// Highest queue fill level observed this run.
    pub queue_high_water: u64,
    /// Checkpoints written this run.
    pub checkpoints_written: u64,
    /// Selection in force at shutdown.
    pub final_selection: Selection,
}

/// Long-running advisor state machine. Create with [`Daemon::new`] or
/// [`Daemon::resume`], then drive it with [`Daemon::run_reader`] (stdin /
/// file / replay) or [`crate::socket::run_socket`] (live socket).
pub struct Daemon {
    schema: Schema,
    config: ServiceConfig,
    tuner: Tuner,
    window: EpochWindow,
    /// Live frontier arbitration. The unsharded daemon is one tenant —
    /// everything publishes under part key 0 — so `whatif` queries work
    /// but per-group `tenant` queries need the sharded router.
    arbiter: Arc<Arbiter>,
    /// Observed-cost feedback state. The unsharded daemon is one
    /// whole-schema group: the tracker learns and calibrates tuning,
    /// but the deployment gate stays idle (it needs table-scoped group
    /// checkpoints as rollback targets; see [`crate::feedback`]).
    feedback: GroupFeedback,
    /// Lifetime counters restored from a checkpoint (zero for a fresh
    /// daemon); this run's deltas are added on top.
    base_ingested: u64,
    base_invalid: u64,
    base_dropped: u64,
}

impl Daemon {
    /// Fresh daemon with empty state.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem, if any.
    pub fn new(schema: Schema, config: ServiceConfig) -> Result<Self, String> {
        config.validate()?;
        let tuner = Tuner::new(&schema, config.clone());
        let window = EpochWindow::new(
            schema.clone(),
            config.epoch_events,
            config.window_epochs,
            config.max_templates,
        );
        let arbiter = Arc::new(Arbiter::new(
            global_budget(&schema, config.budget_share),
            config.tenant_weights.clone(),
        ));
        let feedback = GroupFeedback::new(&config);
        Ok(Self {
            schema,
            config,
            tuner,
            window,
            arbiter,
            feedback,
            base_ingested: 0,
            base_invalid: 0,
            base_dropped: 0,
        })
    }

    /// Daemon resuming from a checkpoint. The checkpoint must have been
    /// written under the same aggregation configuration — silently
    /// changing epoch sizing mid-stream would corrupt every later
    /// snapshot.
    pub fn resume(schema: Schema, config: ServiceConfig, cp: &Checkpoint) -> Result<Self, String> {
        config.validate()?;
        if cp.config.epoch_events != config.epoch_events
            || cp.config.window_epochs != config.window_epochs
            || cp.config.max_templates != config.max_templates
        {
            return Err(format!(
                "checkpoint aggregation config (epoch_events={}, window_epochs={}, \
                 max_templates={}) does not match the requested configuration",
                cp.config.epoch_events, cp.config.window_epochs, cp.config.max_templates
            ));
        }
        let (tuner, window) = cp.restore(&schema)?;
        let arbiter = Arc::new(Arbiter::new(
            global_budget(&schema, config.budget_share),
            config.tenant_weights.clone(),
        ));
        // Re-seat the restored publication so interactive queries are
        // answerable before the first post-restore epoch seals.
        if let Some(pf) = tuner.published() {
            arbiter.publish(0, Arc::clone(pf), Trace::disabled());
        }
        let feedback = match &cp.feedback {
            Some(saved) => GroupFeedback::load(saved, &config)?,
            None => GroupFeedback::new(&config),
        };
        Ok(Self {
            schema,
            config,
            tuner,
            window,
            arbiter,
            feedback,
            base_ingested: cp.ingested,
            base_invalid: cp.invalid,
            base_dropped: cp.dropped,
        })
    }

    /// Epochs tuned over the daemon's lifetime.
    pub fn epoch(&self) -> u64 {
        self.tuner.epoch()
    }

    /// Selection currently in force.
    pub fn selection(&self) -> &Selection {
        self.tuner.selection()
    }

    /// The live frontier arbiter: maintained allocations and
    /// interactive `whatif` answers over the daemon's single part.
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Canonical calibration snapshot line — byte-identical to the
    /// in-band `{"control":"calibration"}` answer at this point in the
    /// stream.
    pub fn calibration(&self) -> String {
        self.feedback.snapshot().render()
    }

    fn parallelism(&self) -> Parallelism {
        match self.config.threads {
            0 => Parallelism::available(),
            n => Parallelism::new(n),
        }
    }

    /// Run the daemon over a line-based input until EOF or a `shutdown`
    /// control, then drain, write a final checkpoint (if `checkpoint` is
    /// set) and report.
    pub fn run_reader<R: BufRead + Send>(
        &mut self,
        input: R,
        policy: OverloadPolicy,
        checkpoint: Option<&Path>,
        trace: Trace<'_>,
    ) -> Result<ServiceReport, String> {
        let queue = BoundedQueue::new(self.config.queue_capacity);
        let board = self.status_board();
        let schema = self.schema.clone();
        let base_dropped = self.base_dropped;
        let arbiter = Arc::clone(&self.arbiter);
        let (outcomes, checkpoints_written) = std::thread::scope(|s| {
            s.spawn(|| ingest_lines(input, &schema, &queue, policy, &board, base_dropped, &arbiter));
            self.consume(&queue, &board, checkpoint, trace)
        })?;
        Ok(self.report(outcomes, &queue, &board, checkpoints_written))
    }

    /// A fresh [`StatusBoard`] seeded with the daemon's lifetime
    /// counters, so status lines and checkpoints report totals across
    /// restarts.
    pub(crate) fn status_board(&self) -> StatusBoard {
        let board = StatusBoard::new(0);
        board.ingested.store(self.base_ingested, Ordering::Relaxed);
        board.invalid.store(self.base_invalid, Ordering::Relaxed);
        board
    }

    /// Events dropped in previous runs (restored from a checkpoint).
    pub(crate) fn base_dropped(&self) -> u64 {
        self.base_dropped
    }

    /// A shared handle to the daemon's arbiter (for socket connection
    /// handlers that outlive a `&self` borrow).
    pub(crate) fn arbiter_handle(&self) -> Arc<Arbiter> {
        Arc::clone(&self.arbiter)
    }

    /// Pop until the queue closes and drains; tune every epoch that
    /// seals; honor checkpoint items; write the final checkpoint.
    pub(crate) fn consume(
        &mut self,
        queue: &BoundedQueue<WorkItem>,
        board: &StatusBoard,
        checkpoint: Option<&Path>,
        trace: Trace<'_>,
    ) -> Result<(Vec<EpochOutcome>, u64), String> {
        let par = self.parallelism();
        let every = self.config.checkpoint_every_epochs;
        let mut outcomes = Vec::new();
        let mut written = 0u64;
        while let Some(item) = queue.pop() {
            if take_status_signal() {
                eprintln!(
                    "{}",
                    board.line(
                        self.base_dropped + queue.dropped(),
                        &[queue.len() as u64],
                        &self.arbiter.allocations(),
                    )
                );
            }
            match item {
                WorkItem::Query(q) => {
                    if self.window.push(&q) {
                        let snap = self
                            .window
                            .snapshot()
                            .expect("snapshot exists after an epoch seals");
                        outcomes.push(feedback::tune_group(
                            &mut self.tuner,
                            &mut self.window,
                            &mut self.feedback,
                            &snap,
                            &self.schema,
                            &self.config,
                            par,
                            trace,
                            Some(&board.cal),
                        ));
                        board.epochs.fetch_add(1, Ordering::Relaxed);
                        if self.tuner.take_published_dirty() {
                            if let Some(pf) = self.tuner.published() {
                                self.arbiter.publish(0, Arc::clone(pf), trace);
                            }
                        }
                        if every > 0 && self.tuner.epoch().is_multiple_of(every) {
                            if let Some(path) = checkpoint {
                                self.write_checkpoint(path, queue, board)?;
                                written += 1;
                                board.checkpoints.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                WorkItem::Observed(o) => {
                    self.feedback.observe(&self.config, &o, Some(&board.cal), trace);
                }
                WorkItem::Checkpoint => {
                    if let Some(path) = checkpoint {
                        self.write_checkpoint(path, queue, board)?;
                        written += 1;
                        board.checkpoints.fetch_add(1, Ordering::Relaxed);
                    }
                }
                WorkItem::Interactive(pq) => {
                    if pq.arrive() {
                        let answer = match pq.control() {
                            // One unsharded group: per-tenant splits only
                            // exist under the sharded router.
                            Control::Tenant { .. } => Some(
                                "{\"error\":\"tenant queries require --shards\"}".to_owned(),
                            ),
                            Control::Calibration => {
                                Some(self.feedback.snapshot().render())
                            }
                            c => self.arbiter.answer(c),
                        };
                        if let Some(line) = answer {
                            pq.respond(line);
                        }
                    }
                }
            }
        }
        if let Some(path) = checkpoint {
            self.write_checkpoint(path, queue, board)?;
            written += 1;
            board.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        Ok((outcomes, written))
    }

    fn write_checkpoint(
        &self,
        path: &Path,
        queue: &BoundedQueue<WorkItem>,
        board: &StatusBoard,
    ) -> Result<(), String> {
        crate::fault::fire(crate::fault::DAEMON_CHECKPOINT, 0)?;
        Checkpoint::capture(
            &self.config,
            &self.tuner,
            &self.window,
            board.ingested.load(Ordering::Relaxed),
            board.invalid.load(Ordering::Relaxed),
            self.base_dropped + queue.dropped(),
        )
        .with_feedback(
            self.config
                .calibration
                .enabled
                .then(|| self.feedback.save()),
        )
        .save(path)
    }

    pub(crate) fn report(
        &self,
        epochs: Vec<EpochOutcome>,
        queue: &BoundedQueue<WorkItem>,
        board: &StatusBoard,
        checkpoints_written: u64,
    ) -> ServiceReport {
        ServiceReport {
            epochs,
            ingested: board.ingested.load(Ordering::Relaxed),
            invalid: board.invalid.load(Ordering::Relaxed),
            dropped: self.base_dropped + queue.dropped(),
            queue_high_water: queue.high_water(),
            checkpoints_written,
            final_selection: self.tuner.selection().clone(),
        }
    }

    pub(crate) fn schema(&self) -> &Schema {
        &self.schema
    }

    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

/// Closes the queue when dropped — so the consumer is released even if
/// the reader thread unwinds mid-stream (a panicking reader must never
/// leave the consumer blocked on a queue nobody will close).
struct CloseOnExit<'a>(&'a BoundedQueue<WorkItem>);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Reader loop: decode records (JSONL lines or binary frames, detected
/// per record), validate, push. Returns when the input ends or a
/// `shutdown` control arrives; always closes the queue on the way out —
/// including by panic — so the consumer can drain and finish.
pub(crate) fn ingest_lines<R: BufRead>(
    input: R,
    schema: &Schema,
    queue: &BoundedQueue<WorkItem>,
    policy: OverloadPolicy,
    board: &StatusBoard,
    base_dropped: u64,
    arbiter: &Arbiter,
) {
    let _close = CloseOnExit(queue);
    let mut dict = DecodeDict::new();
    let status_line =
        || board.line(base_dropped + queue.dropped(), &[queue.len() as u64], &arbiter.allocations());
    for record in RecordIter::new(input) {
        if take_status_signal() {
            eprintln!("{}", status_line());
        }
        let verdict = match record {
            Record::Line(line) => ingest_one(&line, schema, queue, policy, board),
            Record::Item(item) => ingest_item(&item, &mut dict, schema, queue, policy, board),
            Record::Corrupt => {
                board.invalid.fetch_add(1, Ordering::Relaxed);
                Ingest::Continue
            }
        };
        match verdict {
            Ingest::Continue => {}
            Ingest::Status => {
                eprintln!("{}", status_line());
            }
            Ingest::Interactive(c) => {
                // No reply channel on the reader path: the consumer
                // prints the answer to stderr. Interactive items are
                // never shed — a dropped question is a hung client.
                let _ = queue.push_blocking(WorkItem::Interactive(PendingQuery::new(c, 1, None)));
            }
            Ingest::Shutdown => break,
        }
    }
}

/// Interpret one decoded binary item exactly as [`ingest_one`] would its
/// JSONL rendering: defines extend the dictionary silently, events
/// resolve (or count invalid), controls act, raw payloads go through the
/// line parser, journal tags are transparent.
pub(crate) fn ingest_item(
    item: &WireItem,
    dict: &mut DecodeDict,
    schema: &Schema,
    queue: &BoundedQueue<WorkItem>,
    policy: OverloadPolicy,
    board: &StatusBoard,
) -> Ingest {
    match item {
        WireItem::Define { table, kind, attrs } => {
            dict.define(schema, *table, *kind, attrs.clone());
            Ingest::Continue
        }
        WireItem::Event { template, frequency } => match dict.resolve(*template, *frequency) {
            Some(q) => {
                board.ingested.fetch_add(1, Ordering::Relaxed);
                let _ = match policy {
                    OverloadPolicy::Block => queue.push_blocking(WorkItem::Query(q.into_owned())),
                    OverloadPolicy::DropOldest => {
                        queue.push_drop_oldest(WorkItem::Query(q.into_owned()))
                    }
                };
                Ingest::Continue
            }
            None => {
                board.invalid.fetch_add(1, Ordering::Relaxed);
                Ingest::Continue
            }
        },
        WireItem::Control(Control::Checkpoint) => {
            let _ = match policy {
                OverloadPolicy::Block => queue.push_blocking(WorkItem::Checkpoint),
                OverloadPolicy::DropOldest => queue.push_drop_oldest(WorkItem::Checkpoint),
            };
            Ingest::Continue
        }
        WireItem::Control(Control::Status) => Ingest::Status,
        WireItem::Control(Control::Shutdown) => Ingest::Shutdown,
        WireItem::Control(
            c @ (Control::Whatif { .. }
            | Control::Tenant { .. }
            | Control::Budget { .. }
            | Control::Calibration),
        ) => Ingest::Interactive(*c),
        WireItem::Raw(bytes) => {
            let line = String::from_utf8_lossy(bytes).into_owned();
            ingest_one(&line, schema, queue, policy, board)
        }
        WireItem::Tagged { item, .. } => ingest_item(item, dict, schema, queue, policy, board),
        // Supervisor messages never belong in an event stream.
        WireItem::Sup(_) => {
            board.invalid.fetch_add(1, Ordering::Relaxed);
            Ingest::Continue
        }
    }
}

/// Parse and route one line; the verdict tells the caller whether to
/// keep reading, stop, or render a status line.
pub(crate) fn ingest_one(
    line: &str,
    schema: &Schema,
    queue: &BoundedQueue<WorkItem>,
    policy: OverloadPolicy,
    board: &StatusBoard,
) -> Ingest {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ingest::Continue;
    }
    match parse_line(trimmed, schema) {
        Ok(InputLine::Query(q)) => {
            board.ingested.fetch_add(1, Ordering::Relaxed);
            let _ = match policy {
                OverloadPolicy::Block => queue.push_blocking(WorkItem::Query(q)),
                OverloadPolicy::DropOldest => queue.push_drop_oldest(WorkItem::Query(q)),
            };
            Ingest::Continue
        }
        Ok(InputLine::Control(Control::Checkpoint)) => {
            let _ = match policy {
                OverloadPolicy::Block => queue.push_blocking(WorkItem::Checkpoint),
                OverloadPolicy::DropOldest => queue.push_drop_oldest(WorkItem::Checkpoint),
            };
            Ingest::Continue
        }
        Ok(InputLine::Observed(o)) => {
            let _ = match policy {
                OverloadPolicy::Block => queue.push_blocking(WorkItem::Observed(o)),
                OverloadPolicy::DropOldest => queue.push_drop_oldest(WorkItem::Observed(o)),
            };
            Ingest::Continue
        }
        Ok(InputLine::Control(Control::Status)) => Ingest::Status,
        Ok(InputLine::Control(Control::Shutdown)) => Ingest::Shutdown,
        Ok(InputLine::Control(
            c @ (Control::Whatif { .. }
            | Control::Tenant { .. }
            | Control::Budget { .. }
            | Control::Calibration),
        )) => Ingest::Interactive(c),
        Err(_) => {
            board.invalid.fetch_add(1, Ordering::Relaxed);
            Ingest::Continue
        }
    }
}

/// The epoch snapshots the window aggregator seals for a recorded log —
/// the pure single-threaded reference for replay checks. Works on both
/// encodings (and mixtures). Invalid records are skipped (as the daemon
/// does), `shutdown` stops, `checkpoint` is a no-op.
pub fn offline_snapshots<R: BufRead>(
    input: R,
    schema: &Schema,
    config: &ServiceConfig,
) -> Result<Vec<Workload>, String> {
    config.validate()?;
    let mut window = EpochWindow::new(
        schema.clone(),
        config.epoch_events,
        config.window_epochs,
        config.max_templates,
    );
    let mut dict = DecodeDict::new();
    let mut out = Vec::new();
    let push_line = |line: &str, window: &mut EpochWindow, out: &mut Vec<Workload>| -> bool {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return true;
        }
        match parse_line(trimmed, schema) {
            Ok(InputLine::Query(q)) => {
                if window.push(&q) {
                    out.push(window.snapshot().expect("sealed window has a snapshot"));
                }
                true
            }
            Ok(InputLine::Control(Control::Shutdown)) => false,
            // Observed-cost probes never shape the pure snapshot
            // reference: with calibration disabled they are inert, and
            // the daemon never folds them into epoch windows either.
            Ok(InputLine::Observed(_)) | Ok(InputLine::Control(_)) | Err(_) => true,
        }
    };
    for record in RecordIter::new(input) {
        let keep_going = match record {
            Record::Line(line) => push_line(&line, &mut window, &mut out),
            Record::Corrupt => true,
            Record::Item(item) => {
                match flatten_item(&item, &mut dict, schema) {
                    FlatItem::Query(q) => {
                        if window.push(&q) {
                            out.push(window.snapshot().expect("sealed window has a snapshot"));
                        }
                        true
                    }
                    FlatItem::RawLine(line) => push_line(&line, &mut window, &mut out),
                    FlatItem::Control(Control::Shutdown) => false,
                    FlatItem::Control(_) | FlatItem::Skip => true,
                }
            }
        };
        if !keep_going {
            break;
        }
    }
    Ok(out)
}

/// A [`WireItem`] reduced to the cases an offline replay cares about.
pub(crate) enum FlatItem {
    /// A resolved, schema-valid query.
    Query(Query),
    /// A raw payload to feed through the line parser.
    RawLine(String),
    /// A control command.
    Control(Control),
    /// Nothing to replay (a define, or an invalid event).
    Skip,
}

/// Resolve one item against the dictionary, unwrapping journal tags.
pub(crate) fn flatten_item(item: &WireItem, dict: &mut DecodeDict, schema: &Schema) -> FlatItem {
    match item {
        WireItem::Define { table, kind, attrs } => {
            dict.define(schema, *table, *kind, attrs.clone());
            FlatItem::Skip
        }
        WireItem::Event { template, frequency } => match dict.resolve(*template, *frequency) {
            Some(q) => FlatItem::Query(q.into_owned()),
            None => FlatItem::Skip,
        },
        WireItem::Control(c) => FlatItem::Control(*c),
        WireItem::Raw(bytes) => FlatItem::RawLine(String::from_utf8_lossy(bytes).into_owned()),
        WireItem::Tagged { item, .. } => flatten_item(item, dict, schema),
        WireItem::Sup(_) => FlatItem::Skip,
    }
}

/// Offline reference loop: `dynamic::adapt` over per-epoch snapshots,
/// with the budget the tuner would compute. Returns the per-epoch
/// selections the daemon must reproduce under
/// [`crate::DriftThresholds::always_adapt`].
pub fn offline_adapt(snapshots: &[Workload], config: &ServiceConfig) -> Vec<Selection> {
    if snapshots.is_empty() {
        return Vec::new();
    }
    let ests: Vec<CachingWhatIf<AnalyticalWhatIf<'_>>> = snapshots
        .iter()
        .map(|w| CachingWhatIf::new(AnalyticalWhatIf::new(w)))
        .collect();
    let refs: Vec<&dyn WhatIfOptimizer> = ests.iter().map(|e| e as &dyn WhatIfOptimizer).collect();
    let a = budget::relative_budget(&refs[0], config.budget_share);
    dynamic::adapt(&refs, a, config.transition)
        .epochs
        .into_iter()
        .map(|e| e.selection)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftThresholds;
    use isel_workload::synthetic::{self, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::io::Cursor;

    fn workload() -> Workload {
        synthetic::generate(&SyntheticConfig {
            tables: 2,
            attrs_per_table: 10,
            queries_per_table: 12,
            rows_base: 50_000,
            max_query_width: 3,
            update_fraction: 0.2,
            seed: 33,
        })
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            epoch_events: 16,
            window_epochs: 2,
            max_templates: 64,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        }
    }

    /// Sample `n` single-execution events from the workload's templates,
    /// frequency-weighted.
    fn sample_log(w: &Workload, n: usize, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = w.total_frequency();
        let mut out = String::new();
        for _ in 0..n {
            let mut pick = rng.gen_range(0..total);
            let q = w
                .queries()
                .iter()
                .find(|q| {
                    if pick < q.frequency() {
                        true
                    } else {
                        pick -= q.frequency();
                        false
                    }
                })
                .expect("pick < total");
            let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
            let kind = if q.is_update() { r#","kind":"Update""# } else { "" };
            out.push_str(&format!(
                "{{\"table\":{},\"attrs\":[{}]{kind}}}\n",
                q.table().0,
                attrs.join(",")
            ));
        }
        out
    }

    #[test]
    fn daemon_replay_matches_offline_adapt() {
        let w = workload();
        let cfg = config();
        let log = sample_log(&w, 80, 5);

        let mut daemon = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
        let report = daemon
            .run_reader(
                Cursor::new(log.clone()),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(report.ingested, 80);
        assert_eq!(report.invalid, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.epochs.len(), 5, "80 events / 16 per epoch");

        let snaps = offline_snapshots(Cursor::new(log), w.schema(), &cfg).unwrap();
        assert_eq!(snaps.len(), 5);
        let offline = offline_adapt(&snaps, &cfg);
        for (got, want) in report.epochs.iter().zip(&offline) {
            assert_eq!(&got.selection, want);
        }
        assert_eq!(&report.final_selection, offline.last().unwrap());
    }

    #[test]
    fn interactive_queries_are_answered_behind_preceding_events() {
        let w = workload();
        let cfg = config();
        let mut daemon = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let board = daemon.status_board();
        // 16 events seal one epoch, so the tuned frontier is published
        // before the barrier queries queued behind them are answered.
        let log = sample_log(&w, 16, 7);
        for line in log.lines() {
            let _ = ingest_one(line, w.schema(), &queue, OverloadPolicy::Block, &board);
        }
        let budget = daemon.arbiter.budget();
        let (tx, rx) = std::sync::mpsc::channel();
        let pq = PendingQuery::new(Control::Whatif { budget }, 1, Some(tx));
        let _ = queue.push_blocking(WorkItem::Interactive(pq));
        let (tx, tenant_rx) = std::sync::mpsc::channel();
        let pq = PendingQuery::new(Control::Tenant { table: 0, budget }, 1, Some(tx));
        let _ = queue.push_blocking(WorkItem::Interactive(pq));
        queue.close();
        daemon.consume(&queue, &board, None, Trace::disabled()).unwrap();

        let reply = rx.recv().unwrap();
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("budget").and_then(|b| b.as_u64()), Some(budget));
        let total = v.get("total_memory").and_then(|m| m.as_u64()).unwrap();
        assert!(total <= budget, "merged memory {total} within budget {budget}");
        assert_eq!(
            v.get("allocations").and_then(|a| a.as_array()).map(Vec::len),
            Some(1),
            "the unsharded daemon is one tenant"
        );
        // The same question asked again is answered from maintained
        // state, byte-identically.
        assert_eq!(reply, daemon.arbiter.whatif(budget));
        assert!(
            tenant_rx.recv().unwrap().contains("tenant queries require --shards"),
            "per-tenant splits need the sharded router"
        );
    }

    #[test]
    fn invalid_lines_are_counted_not_fatal() {
        let w = workload();
        let mut daemon = Daemon::new(w.schema().clone(), config()).unwrap();
        let log = "garbage\n{\"table\":999,\"attrs\":[0]}\n\n";
        let report = daemon
            .run_reader(
                Cursor::new(log.to_owned()),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(report.invalid, 2);
        assert_eq!(report.ingested, 0);
        assert!(report.epochs.is_empty());
    }

    #[test]
    fn shutdown_control_stops_ingestion() {
        let w = workload();
        let q = &w.queries()[0];
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        let event = format!("{{\"table\":{},\"attrs\":[{}]}}\n", q.table().0, attrs.join(","));
        let log = format!("{event}{}\n{event}", r#"{"control":"shutdown"}"#);
        let mut daemon = Daemon::new(w.schema().clone(), config()).unwrap();
        let report = daemon
            .run_reader(Cursor::new(log), OverloadPolicy::Block, None, Trace::disabled())
            .unwrap();
        assert_eq!(report.ingested, 1, "events after shutdown are not read");
    }

    #[test]
    fn checkpoint_control_writes_in_stream_order() {
        let w = workload();
        let cfg = config();
        let dir = std::env::temp_dir().join("isel-service-daemon-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctl.json");
        let mut log = sample_log(&w, 20, 9);
        log.push_str("{\"control\":\"checkpoint\"}\n");
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let report = daemon
            .run_reader(
                Cursor::new(log),
                OverloadPolicy::Block,
                Some(&path),
                Trace::disabled(),
            )
            .unwrap();
        // One from the control line, one final at shutdown.
        assert_eq!(report.checkpoints_written, 2);
        let cp = Checkpoint::load(&path).unwrap();
        assert_eq!(cp.ingested, 20);
        assert_eq!(cp.epoch, 1, "16 of 20 events sealed one epoch");
        std::fs::remove_file(&path).ok();
    }
}
