//! Bounded producer/consumer queue with accounted overload.
//!
//! Two overload policies, chosen per push:
//!
//! * [`BoundedQueue::push_blocking`] — the producer waits for space
//!   (replay mode: a recorded log must reach the aggregator losslessly,
//!   or the determinism contract with the offline loop is void).
//! * [`BoundedQueue::push_drop_oldest`] — a full queue evicts its oldest
//!   element to admit the new one (live mode: fresh events matter more
//!   than stale ones under overload). Every eviction increments a
//!   counter; drops are **never silent**.
//!
//! The queue also tracks its high-water mark as a backpressure
//! diagnostic: a high-water mark at capacity means the consumer fell
//! behind at least once.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO shared between ingestion threads and the tuning loop.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    dropped: AtomicU64,
    high_water: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner { buf: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            dropped: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    fn note_level(&self, len: usize) {
        self.high_water.fetch_max(len as u64, Ordering::Relaxed);
    }

    /// Enqueue, waiting for space if full. Returns `false` (item
    /// discarded) only if the queue was closed.
    pub fn push_blocking(&self, item: T) -> bool {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        while g.buf.len() >= self.capacity && !g.closed {
            g = self.not_full.wait(g).expect("queue lock poisoned");
        }
        if g.closed {
            return false;
        }
        g.buf.push_back(item);
        self.note_level(g.buf.len());
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Enqueue without waiting; a full queue evicts its oldest element
    /// (counted in [`Self::dropped`]). Returns `false` only if closed.
    pub fn push_drop_oldest(&self, item: T) -> bool {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        if g.closed {
            return false;
        }
        if g.buf.len() >= self.capacity {
            g.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        g.buf.push_back(item);
        self.note_level(g.buf.len());
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Dequeue the oldest element, waiting while the queue is empty and
    /// open. `None` means closed *and* drained — the consumer's signal to
    /// finish up.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = g.buf.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock poisoned");
        }
    }

    /// Close the queue: producers stop, the consumer drains what remains.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Elements evicted by [`Self::push_drop_oldest`] so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Highest fill level observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Current fill level.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            assert!(q.push_blocking(i));
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_oldest_counts_every_eviction() {
        let q = BoundedQueue::new(3);
        for i in 0..10 {
            assert!(q.push_drop_oldest(i));
        }
        assert_eq!(q.dropped(), 7);
        assert_eq!(q.high_water(), 3);
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![7, 8, 9], "newest events survive");
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..100 {
                    assert!(q.push_blocking(i));
                }
                q.close();
            })
        };
        let mut seen = Vec::new();
        while let Some(x) = q.pop() {
            seen.push(x);
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<i32>>());
        assert_eq!(q.dropped(), 0, "blocking mode never drops");
    }

    #[test]
    fn close_releases_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push_blocking(1));
        let blocked = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(2))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!blocked.join().unwrap(), "push after close reports failure");
        assert_eq!(q.pop(), Some(1), "already-queued items still drain");
        assert_eq!(q.pop(), None);
    }
}
