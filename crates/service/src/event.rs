//! JSONL ingestion events.
//!
//! One line per event. Query events reuse the workload serde vocabulary
//! (`{"table":T,"attrs":[..],"frequency":B,"kind":"Select"|"Update"}`,
//! with `frequency` defaulting to 1 and `kind` to `Select`), so a
//! recorded log is readable by the same tooling as a workload file.
//! Control lines are `{"control":"shutdown"}`,
//! `{"control":"checkpoint"}` and `{"control":"status"}`, plus the
//! interactive arbitration queries `{"control":"whatif","budget":B}`
//! and `{"control":"tenant","table_group":T,"budget":B}` answered from
//! the maintained frontier state (see `crate::arbiter`), and the
//! mutating `{"control":"budget","budget":B}` re-anchoring that state
//! at a new global budget. Any control
//! line may additionally carry a `"token":N` field — a socket-serving
//! implementation detail routing the reply back to the issuing
//! connection ([`parse_token`]); parsing ignores it.
//!
//! Parsing validates against the schema: unknown tables, out-of-range or
//! cross-table attributes, empty attribute lists and zero frequencies are
//! rejected with a message — the daemon counts such lines as *invalid*
//! and keeps going; a malformed event must never kill the service.

use isel_workload::{AttrId, Query, QueryKind, Schema, TableId};
use serde::Deserialize;

/// Out-of-band command embedded in the event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Stop ingesting, drain the queue, write a final checkpoint.
    Shutdown,
    /// Write a checkpoint now (ordered with the surrounding events).
    Checkpoint,
    /// Emit the aggregated status line (out of band: never queued, so it
    /// does not perturb replay determinism).
    Status,
    /// Interactive query: what would every group be allocated at global
    /// budget `budget`? Answered from the maintained frontiers without
    /// re-running selection.
    Whatif {
        /// Hypothetical global memory budget in bytes.
        budget: u64,
    },
    /// Interactive query: what does table group `table` get at global
    /// budget `budget`?
    Tenant {
        /// Table group being asked about.
        table: u16,
        /// Hypothetical global memory budget in bytes.
        budget: u64,
    },
    /// Re-anchor the maintained global-budget merge at `budget` bytes:
    /// unlike [`Control::Whatif`] this *mutates* the arbiter — the
    /// maintained merge re-materializes every group's selection under
    /// the new budget and all later answers use it.
    Budget {
        /// New global memory budget in bytes.
        budget: u64,
    },
    /// Interactive query: the calibration subsystem's counters (probes
    /// ingested, ratio histogram, deployment-gate accounting). Answered
    /// in stream order like [`Control::Whatif`] so served and offline
    /// replays render byte-identical tables (see `crate::feedback`).
    Calibration,
}

/// One observed-cost probe: the measured execution cost of a template
/// (optionally under a specific index), as produced by `dbsim::measure`
/// or live instrumentation. `query` carries the validated template
/// identity; its frequency is meaningless here and fixed at 1.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservedEvent {
    /// The template the cost was observed for.
    pub query: Query,
    /// The index the execution used (`None` = sequential scan).
    pub index: Option<Vec<AttrId>>,
    /// Measured execution cost. Always finite coming out of the parser
    /// (JSON has no NaN); non-positive values are accepted here and
    /// rejected — counted — by the feedback tracker.
    pub cost: f64,
}

/// One successfully parsed input line.
#[derive(Clone, Debug, PartialEq)]
pub enum InputLine {
    /// A validated query event.
    Query(Query),
    /// A validated observed-cost probe.
    Observed(ObservedEvent),
    /// A control command.
    Control(Control),
}

/// Superset of all line shapes; which fields are present decides the
/// interpretation (a `control` key wins).
#[derive(Deserialize)]
struct RawLine {
    control: Option<String>,
    table: Option<u16>,
    attrs: Option<Vec<u32>>,
    frequency: Option<u64>,
    kind: Option<QueryKind>,
    budget: Option<u64>,
    table_group: Option<u16>,
    observed_cost: Option<f64>,
    index: Option<Vec<u32>>,
}

/// Parse and validate one JSONL line against `schema`.
pub fn parse_line(line: &str, schema: &Schema) -> Result<InputLine, String> {
    let raw: RawLine = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    if let Some(c) = raw.control {
        return match c.as_str() {
            "shutdown" => Ok(InputLine::Control(Control::Shutdown)),
            "checkpoint" => Ok(InputLine::Control(Control::Checkpoint)),
            "status" => Ok(InputLine::Control(Control::Status)),
            "whatif" => {
                let budget = raw.budget.ok_or("whatif requires \"budget\"")?;
                Ok(InputLine::Control(Control::Whatif { budget }))
            }
            "tenant" => {
                let table = raw.table_group.ok_or("tenant requires \"table_group\"")?;
                if table as usize >= schema.tables().len() {
                    return Err(format!("unknown table group t{table}"));
                }
                let budget = raw.budget.ok_or("tenant requires \"budget\"")?;
                Ok(InputLine::Control(Control::Tenant { table, budget }))
            }
            "budget" => {
                let budget = raw.budget.ok_or("budget requires \"budget\"")?;
                Ok(InputLine::Control(Control::Budget { budget }))
            }
            "calibration" => Ok(InputLine::Control(Control::Calibration)),
            other => Err(format!("unknown control command {other:?}")),
        };
    }
    let table = raw.table.ok_or("missing \"table\"")?;
    let attrs = raw.attrs.ok_or("missing \"attrs\"")?;
    if table as usize >= schema.tables().len() {
        return Err(format!("unknown table t{table}"));
    }
    if attrs.is_empty() {
        return Err("a query event must access at least one attribute".into());
    }
    let frequency = raw.frequency.unwrap_or(1);
    if frequency == 0 {
        return Err("frequency must be positive".into());
    }
    let table = TableId(table);
    for &a in &attrs {
        if a as usize >= schema.attr_count() {
            return Err(format!("unknown attribute a{a}"));
        }
        if schema.attribute(AttrId(a)).table != table {
            return Err(format!("attribute a{a} does not belong to {table}"));
        }
    }
    let attrs: Vec<AttrId> = attrs.into_iter().map(AttrId).collect();
    if let Some(cost) = raw.observed_cost {
        if !cost.is_finite() {
            return Err("observed_cost must be finite".into());
        }
        let query = Query::with_kind(table, attrs, 1, raw.kind.unwrap_or_default());
        let index = match raw.index {
            None => None,
            Some(ix) => {
                if ix.is_empty() {
                    return Err("an observed index needs at least one attribute".into());
                }
                for &a in &ix {
                    if a as usize >= schema.attr_count() {
                        return Err(format!("unknown attribute a{a}"));
                    }
                    if schema.attribute(AttrId(a)).table != table {
                        return Err(format!("attribute a{a} does not belong to {table}"));
                    }
                }
                Some(ix.into_iter().map(AttrId).collect())
            }
        };
        return Ok(InputLine::Observed(ObservedEvent { query, index, cost }));
    }
    Ok(InputLine::Query(Query::with_kind(
        table,
        attrs,
        frequency,
        raw.kind.unwrap_or_default(),
    )))
}

/// Extract the `"token":N` reply-routing field of a control line, if
/// present. A separate micro-parse so the hot event path never looks at
/// it; malformed lines simply yield `None` (they are counted invalid
/// downstream as usual).
pub fn parse_token(line: &str) -> Option<u64> {
    #[derive(Deserialize)]
    struct TokenOnly {
        token: Option<u64>,
    }
    serde_json::from_str::<TokenOnly>(line).ok()?.token
}

#[cfg(test)]
mod tests {
    use super::*;
    use isel_workload::SchemaBuilder;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let t0 = b.table("t0", 1_000);
        b.attribute(t0, "a", 10, 4);
        b.attribute(t0, "b", 10, 4);
        let t1 = b.table("t1", 1_000);
        b.attribute(t1, "c", 10, 4);
        b.finish()
    }

    #[test]
    fn parses_minimal_query_event() {
        let line = r#"{"table":0,"attrs":[1,0]}"#;
        match parse_line(line, &schema()).unwrap() {
            InputLine::Query(q) => {
                assert_eq!(q.table(), TableId(0));
                assert_eq!(q.attrs(), &[AttrId(0), AttrId(1)]);
                assert_eq!(q.frequency(), 1);
                assert_eq!(q.kind(), QueryKind::Select);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_query_event() {
        let line = r#"{"table":1,"attrs":[2],"frequency":7,"kind":"Update"}"#;
        match parse_line(line, &schema()).unwrap() {
            InputLine::Query(q) => {
                assert_eq!(q.frequency(), 7);
                assert!(q.is_update());
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_lines() {
        let s = schema();
        assert_eq!(
            parse_line(r#"{"control":"shutdown"}"#, &s).unwrap(),
            InputLine::Control(Control::Shutdown)
        );
        assert_eq!(
            parse_line(r#"{"control":"checkpoint"}"#, &s).unwrap(),
            InputLine::Control(Control::Checkpoint)
        );
        assert_eq!(
            parse_line(r#"{"control":"status"}"#, &s).unwrap(),
            InputLine::Control(Control::Status)
        );
        assert!(parse_line(r#"{"control":"reboot"}"#, &s).is_err());
    }

    #[test]
    fn parses_interactive_queries() {
        let s = schema();
        assert_eq!(
            parse_line(r#"{"control":"whatif","budget":4096}"#, &s).unwrap(),
            InputLine::Control(Control::Whatif { budget: 4096 })
        );
        assert_eq!(
            parse_line(r#"{"control":"tenant","table_group":1,"budget":512}"#, &s).unwrap(),
            InputLine::Control(Control::Tenant { table: 1, budget: 512 })
        );
        // A reply-routing token is tolerated and ignored by the parser.
        assert_eq!(
            parse_line(r#"{"control":"whatif","budget":7,"token":3}"#, &s).unwrap(),
            InputLine::Control(Control::Whatif { budget: 7 })
        );
        assert_eq!(
            parse_line(r#"{"control":"budget","budget":2048}"#, &s).unwrap(),
            InputLine::Control(Control::Budget { budget: 2048 })
        );
        assert!(parse_line(r#"{"control":"whatif"}"#, &s).is_err(), "budget required");
        assert!(parse_line(r#"{"control":"budget"}"#, &s).is_err(), "budget field required");
        assert!(parse_line(r#"{"control":"tenant","budget":1}"#, &s).is_err());
        assert!(
            parse_line(r#"{"control":"tenant","table_group":9,"budget":1}"#, &s).is_err(),
            "unknown group rejected"
        );
    }

    #[test]
    fn parses_observed_cost_events() {
        let s = schema();
        match parse_line(r#"{"table":0,"attrs":[1,0],"observed_cost":12.5}"#, &s).unwrap() {
            InputLine::Observed(o) => {
                assert_eq!(o.query.table(), TableId(0));
                assert_eq!(o.query.attrs(), &[AttrId(0), AttrId(1)]);
                assert_eq!(o.cost, 12.5);
                assert_eq!(o.index, None);
            }
            other => panic!("expected observed, got {other:?}"),
        }
        match parse_line(
            r#"{"table":0,"attrs":[0],"kind":"Update","observed_cost":3.0,"index":[0,1]}"#,
            &s,
        )
        .unwrap()
        {
            InputLine::Observed(o) => {
                assert!(o.query.is_update());
                assert_eq!(o.index, Some(vec![AttrId(0), AttrId(1)]));
            }
            other => panic!("expected observed, got {other:?}"),
        }
        // Non-positive costs parse (the tracker counts them rejected).
        assert!(matches!(
            parse_line(r#"{"table":0,"attrs":[0],"observed_cost":0.0}"#, &s).unwrap(),
            InputLine::Observed(_)
        ));
        // Schema violations in the index are rejected like query attrs.
        for bad in [
            r#"{"table":0,"attrs":[0],"observed_cost":1.0,"index":[]}"#,
            r#"{"table":0,"attrs":[0],"observed_cost":1.0,"index":[99]}"#,
            r#"{"table":0,"attrs":[0],"observed_cost":1.0,"index":[2]}"#,
            r#"{"table":9,"attrs":[0],"observed_cost":1.0}"#,
        ] {
            assert!(parse_line(bad, &s).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn parses_calibration_control() {
        assert_eq!(
            parse_line(r#"{"control":"calibration"}"#, &schema()).unwrap(),
            InputLine::Control(Control::Calibration)
        );
    }

    #[test]
    fn token_micro_parse_is_lenient() {
        assert_eq!(parse_token(r#"{"control":"whatif","budget":7,"token":3}"#), Some(3));
        assert_eq!(parse_token(r#"{"control":"status"}"#), None);
        assert_eq!(parse_token("not json"), None);
    }

    #[test]
    fn rejects_schema_violations() {
        let s = schema();
        for bad in [
            r#"{"table":9,"attrs":[0]}"#,           // unknown table
            r#"{"table":0,"attrs":[]}"#,            // empty attrs
            r#"{"table":0,"attrs":[99]}"#,          // unknown attribute
            r#"{"table":0,"attrs":[2]}"#,           // cross-table attribute
            r#"{"table":0,"attrs":[0],"frequency":0}"#, // zero frequency
            r#"{"attrs":[0]}"#,                     // missing table
            r#"not json"#,
        ] {
            assert!(parse_line(bad, &s).is_err(), "accepted {bad}");
        }
    }
}
