//! Checkpoint / restore of the daemon's tuning state.
//!
//! A checkpoint is one JSON document capturing everything the consumer
//! loop owns: the interned [`IndexPool`] (entries in id order — restoring
//! re-interns them in order, which reproduces every id exactly, prefixes
//! included), the current selection as pool ids, the drift baseline, the
//! sliding window including the partial current epoch, the epoch counter
//! and the ingestion counters. Restoring a checkpoint and feeding the
//! remainder of a log continues **bit-identically** with a run that was
//! never interrupted (pinned by `tests/service.rs`).
//!
//! Writes are atomic: the document lands in `<path>.tmp` and is renamed
//! over the target, so a crash mid-write never leaves a torn checkpoint.
//! All maps serialize in sorted order, so checkpoint bytes themselves are
//! deterministic for identical state.

use crate::config::ServiceConfig;
use crate::tuner::Tuner;
use crate::window::{kind_rank, rank_kind, EpochBatch, EpochWindow};
use isel_core::Selection;
use isel_workload::{AttrId, IndexId, IndexPool, Query, Schema, TableId, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema version of the checkpoint document.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One aggregated template of a saved batch or drift baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedTemplate {
    /// Table id.
    pub table: u16,
    /// Kind rank (0 = select, 1 = update).
    pub kind: u8,
    /// Accessed attribute ids.
    pub attrs: Vec<u32>,
    /// Accumulated frequency.
    pub frequency: u64,
}

/// One epoch batch (sealed or the current partial one).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SavedBatch {
    /// Raw event count of the batch.
    pub events: u64,
    /// Aggregated templates in key order.
    pub templates: Vec<SavedTemplate>,
}

/// Serialized daemon state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Document schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Configuration the state was produced under; a restore under a
    /// different aggregation configuration is refused.
    pub config: ServiceConfig,
    /// Sealed epochs tuned so far.
    pub epoch: u64,
    /// Valid query events ingested so far.
    pub ingested: u64,
    /// Invalid input lines skipped so far.
    pub invalid: u64,
    /// Events dropped under overload so far.
    pub dropped: u64,
    /// Pool entries in id order, each as its attribute list.
    pub pool: Vec<Vec<u32>>,
    /// Current selection as ids into `pool`.
    pub selection: Vec<u32>,
    /// Drift baseline: templates of the last re-selected snapshot, in
    /// workload order.
    pub baseline: Option<Vec<SavedTemplate>>,
    /// Sealed window batches, oldest first.
    pub window: Vec<SavedBatch>,
    /// The partially-filled current epoch.
    pub current: SavedBatch,
}

fn save_batch(batch: &EpochBatch) -> SavedBatch {
    SavedBatch {
        events: batch.events,
        templates: batch
            .templates
            .iter()
            .map(|((table, kind, attrs), freq)| SavedTemplate {
                table: table.0,
                kind: *kind,
                attrs: attrs.iter().map(|a| a.0).collect(),
                frequency: *freq,
            })
            .collect(),
    }
}

fn load_batch(saved: &SavedBatch) -> Result<EpochBatch, String> {
    let mut templates = BTreeMap::new();
    for t in &saved.templates {
        rank_kind(t.kind)?;
        let key = (TableId(t.table), t.kind, t.attrs.iter().map(|&a| AttrId(a)).collect());
        if templates.insert(key, t.frequency).is_some() {
            return Err("duplicate template key in checkpoint batch".into());
        }
    }
    Ok(EpochBatch { templates, events: saved.events })
}

fn save_workload(w: &Workload) -> Vec<SavedTemplate> {
    w.queries()
        .iter()
        .map(|q| SavedTemplate {
            table: q.table().0,
            kind: kind_rank(q.kind()),
            attrs: q.attrs().iter().map(|a| a.0).collect(),
            frequency: q.frequency(),
        })
        .collect()
}

fn load_workload(schema: &Schema, templates: &[SavedTemplate]) -> Result<Workload, String> {
    let queries = templates
        .iter()
        .map(|t| {
            if t.attrs.is_empty() || t.frequency == 0 {
                return Err("degenerate template in checkpoint baseline".to_owned());
            }
            Ok(Query::with_kind(
                TableId(t.table),
                t.attrs.iter().map(|&a| AttrId(a)).collect(),
                t.frequency,
                rank_kind(t.kind)?,
            ))
        })
        .collect::<Result<Vec<Query>, String>>()?;
    Ok(Workload::new(schema.clone(), queries))
}

impl Checkpoint {
    /// Capture the consumer loop's state.
    pub fn capture(
        config: &ServiceConfig,
        tuner: &Tuner,
        window: &EpochWindow,
        ingested: u64,
        invalid: u64,
        dropped: u64,
    ) -> Self {
        let pool = tuner.pool();
        let entries: Vec<Vec<u32>> = (0..pool.len() as u32)
            .map(|id| pool.attrs(IndexId(id)).iter().map(|a| a.0).collect())
            .collect();
        let selection: Vec<u32> = tuner
            .selection()
            .indexes()
            .iter()
            .map(|k| pool.intern(k).0)
            .collect();
        Self {
            version: CHECKPOINT_VERSION,
            config: config.clone(),
            epoch: tuner.epoch(),
            ingested,
            invalid,
            dropped,
            pool: entries,
            selection,
            baseline: tuner.drift_baseline().map(save_workload),
            window: window.window.iter().map(save_batch).collect(),
            current: save_batch(&window.current),
        }
    }

    /// Rebuild tuner and window state over `schema`.
    ///
    /// The pool is re-interned entry by entry in id order; any divergence
    /// between recorded and reproduced ids (a corrupted or reordered
    /// document) is an error, as is a configuration mismatch.
    pub fn restore(&self, schema: &Schema) -> Result<(Tuner, EpochWindow), String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        let pool = IndexPool::new(schema);
        for (i, attrs) in self.pool.iter().enumerate() {
            if attrs.is_empty() {
                return Err("empty index entry in checkpoint pool".into());
            }
            let id = pool.intern_attrs(&attrs.iter().map(|&a| AttrId(a)).collect::<Vec<_>>());
            if id.0 as usize != i {
                return Err(format!(
                    "checkpoint pool entry {i} re-interned as {id} — document reordered?"
                ));
            }
        }
        let selection = Selection::from_indexes(
            self.selection
                .iter()
                .map(|&id| {
                    if id as usize >= pool.len() {
                        return Err(format!("selection references unknown pool id k{id}"));
                    }
                    Ok(pool.resolve(IndexId(id)))
                })
                .collect::<Result<Vec<_>, String>>()?,
        );
        let baseline = self
            .baseline
            .as_ref()
            .map(|t| load_workload(schema, t))
            .transpose()?;
        let mut window = EpochWindow::new(
            schema.clone(),
            self.config.epoch_events,
            self.config.window_epochs,
            self.config.max_templates,
        );
        if self.window.len() > self.config.window_epochs {
            return Err("checkpoint window longer than window_epochs".into());
        }
        for batch in &self.window {
            window.window.push_back(load_batch(batch)?);
        }
        window.current = load_batch(&self.current)?;
        if window.current.events >= self.config.epoch_events {
            return Err("checkpoint current epoch is already sealed".into());
        }
        let tuner =
            Tuner::restore(self.config.clone(), pool, selection, baseline, self.epoch);
        Ok((tuner, window))
    }

    /// Serialize to JSON text (one line).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("serialize checkpoint: {e}"))
    }

    /// Parse a checkpoint document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parse checkpoint: {e}"))
    }

    /// Atomically write the checkpoint to `path` (`<path>.tmp` + rename).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Load a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftThresholds;
    use isel_core::{Parallelism, Trace};
    use isel_workload::synthetic::{self, SyntheticConfig};

    fn workload() -> Workload {
        synthetic::generate(&SyntheticConfig {
            tables: 2,
            attrs_per_table: 10,
            queries_per_table: 12,
            rows_base: 50_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 21,
        })
    }

    fn populated_state() -> (ServiceConfig, Tuner, EpochWindow) {
        let w = workload();
        let config = ServiceConfig {
            epoch_events: 4,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let mut tuner = Tuner::new(w.schema(), config.clone());
        let mut window = EpochWindow::new(w.schema().clone(), 4, 2, 32);
        for q in w.queries().iter().cycle().take(10) {
            if window.push(q) {
                let snap = window.snapshot().unwrap();
                tuner.tune(&snap, Parallelism::serial(), Trace::disabled());
            }
        }
        (config, tuner, window)
    }

    #[test]
    fn capture_restore_round_trips() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 1, 2);
        let (tuner2, window2) = cp.restore(window.schema()).unwrap();
        assert_eq!(tuner2.epoch(), tuner.epoch());
        assert_eq!(tuner2.selection(), tuner.selection());
        assert_eq!(tuner2.pool().len(), tuner.pool().len());
        assert_eq!(tuner2.drift_baseline(), tuner.drift_baseline());
        assert_eq!(window2.sealed_masses(), window.sealed_masses());
        assert_eq!(window2.current_events(), window.current_events());
        // A second capture of the restored state is byte-identical.
        let cp2 = Checkpoint::capture(&config, &tuner2, &window2, 10, 1, 2);
        assert_eq!(cp.to_json().unwrap(), cp2.to_json().unwrap());
    }

    #[test]
    fn json_round_trips() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 0, 0);
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn save_load_is_atomic_and_faithful() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 0, 0);
        let dir = std::env::temp_dir().join("isel-service-cp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        cp.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file renamed away");
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reordered_pool_is_rejected() {
        let (config, tuner, window) = populated_state();
        let mut cp = Checkpoint::capture(&config, &tuner, &window, 0, 0, 0);
        assert!(cp.pool.len() >= 2, "state must intern multiple entries");
        cp.pool.reverse();
        let err = cp.restore(window.schema()).unwrap_err();
        assert!(err.contains("re-interned"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (config, tuner, window) = populated_state();
        let mut cp = Checkpoint::capture(&config, &tuner, &window, 0, 0, 0);
        cp.version = 99;
        assert!(cp.restore(window.schema()).unwrap_err().contains("version"));
    }
}
