//! Checkpoint / restore of the daemon's tuning state.
//!
//! A checkpoint is one JSON document capturing everything the consumer
//! loop owns: the interned [`IndexPool`] (entries in id order — restoring
//! re-interns them in order, which reproduces every id exactly, prefixes
//! included), the current selection as pool ids, the drift baseline, the
//! sliding window including the partial current epoch, the epoch counter
//! and the ingestion counters. Restoring a checkpoint and feeding the
//! remainder of a log continues **bit-identically** with a run that was
//! never interrupted (pinned by `tests/service.rs`).
//!
//! Writes are atomic: the document lands in `<path>.tmp` and is renamed
//! over the target, so a crash mid-write never leaves a torn checkpoint.
//! All maps serialize in sorted order, so checkpoint bytes themselves are
//! deterministic for identical state.
//!
//! # Sharded checkpoints
//!
//! The sharded router checkpoints per shard: each worker serializes its
//! table groups as a [`ShardCheckpoint`] into
//! `<name>.shard-{k}.g{generation}.json` next to the manifest path (see
//! [`shard_file`]), and once every shard has committed a generation the
//! router writes a [`Manifest`] naming those files at the user's
//! checkpoint path — also via tmp+rename, so a kill at any moment leaves
//! either the previous complete generation or the new one, never a mix
//! (restore verifies each file's embedded generation against the
//! manifest). Group state is placement-independent, so a manifest may be
//! restored at a *different* shard count; groups are simply re-packed by
//! the new map. Group pools are compacted (canonically, see
//! [`IndexPool::compact`]) when captured, which keeps shard checkpoints
//! from growing with selection churn — the legacy single-daemon
//! [`Checkpoint`] format is unchanged.

use crate::arbiter::PublishedFrontier;
use crate::config::ServiceConfig;
use crate::tuner::Tuner;
use crate::window::{kind_rank, rank_kind, EpochBatch, EpochWindow};
use isel_core::Selection;
use isel_workload::{AttrId, IndexId, IndexPool, Query, Schema, TableId, Workload};
use crate::feedback::FeedbackCheckpoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema version of the checkpoint document.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One aggregated template of a saved batch or drift baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedTemplate {
    /// Table id.
    pub table: u16,
    /// Kind rank (0 = select, 1 = update).
    pub kind: u8,
    /// Accessed attribute ids.
    pub attrs: Vec<u32>,
    /// Accumulated frequency.
    pub frequency: u64,
}

/// One epoch batch (sealed or the current partial one).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SavedBatch {
    /// Raw event count of the batch.
    pub events: u64,
    /// Aggregated templates in key order.
    pub templates: Vec<SavedTemplate>,
}

/// Serialized daemon state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Document schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Configuration the state was produced under; a restore under a
    /// different aggregation configuration is refused.
    pub config: ServiceConfig,
    /// Sealed epochs tuned so far.
    pub epoch: u64,
    /// Valid query events ingested so far.
    pub ingested: u64,
    /// Invalid input lines skipped so far.
    pub invalid: u64,
    /// Events dropped under overload so far.
    pub dropped: u64,
    /// Pool entries in id order, each as its attribute list.
    pub pool: Vec<Vec<u32>>,
    /// Current selection as ids into `pool`.
    pub selection: Vec<u32>,
    /// Drift baseline: templates of the last re-selected snapshot, in
    /// workload order.
    pub baseline: Option<Vec<SavedTemplate>>,
    /// Sealed window batches, oldest first.
    pub window: Vec<SavedBatch>,
    /// The partially-filled current epoch.
    pub current: SavedBatch,
    /// Frontier published to the arbiter by the last re-selecting epoch,
    /// if any. Absent in pre-arbitration checkpoints (`serde` default),
    /// which restore with no publication and simply re-publish on their
    /// next re-selection.
    #[serde(default)]
    pub published: Option<PublishedFrontier>,
    /// Observed-cost feedback state (see [`crate::feedback`]), present
    /// only when calibration ran: absent in pre-calibration checkpoints
    /// and with calibration disabled, so those documents stay
    /// byte-identical to earlier releases.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub feedback: Option<FeedbackCheckpoint>,
}

fn save_batch(batch: &EpochBatch) -> SavedBatch {
    SavedBatch {
        events: batch.events,
        templates: batch
            .templates
            .iter()
            .map(|((table, kind, attrs), freq)| SavedTemplate {
                table: table.0,
                kind: *kind,
                attrs: attrs.iter().map(|a| a.0).collect(),
                frequency: *freq,
            })
            .collect(),
    }
}

fn load_batch(saved: &SavedBatch) -> Result<EpochBatch, String> {
    let mut templates = BTreeMap::new();
    for t in &saved.templates {
        rank_kind(t.kind)?;
        let key = (TableId(t.table), t.kind, t.attrs.iter().map(|&a| AttrId(a)).collect());
        if templates.insert(key, t.frequency).is_some() {
            return Err("duplicate template key in checkpoint batch".into());
        }
    }
    Ok(EpochBatch { templates, events: saved.events })
}

fn save_workload(w: &Workload) -> Vec<SavedTemplate> {
    w.queries()
        .iter()
        .map(|q| SavedTemplate {
            table: q.table().0,
            kind: kind_rank(q.kind()),
            attrs: q.attrs().iter().map(|a| a.0).collect(),
            frequency: q.frequency(),
        })
        .collect()
}

fn load_workload(schema: &Schema, templates: &[SavedTemplate]) -> Result<Workload, String> {
    let queries = templates
        .iter()
        .map(|t| {
            if t.attrs.is_empty() || t.frequency == 0 {
                return Err("degenerate template in checkpoint baseline".to_owned());
            }
            Ok(Query::with_kind(
                TableId(t.table),
                t.attrs.iter().map(|&a| AttrId(a)).collect(),
                t.frequency,
                rank_kind(t.kind)?,
            ))
        })
        .collect::<Result<Vec<Query>, String>>()?;
    Ok(Workload::new(schema.clone(), queries))
}

/// Re-intern saved pool entries in document order, verifying id
/// stability.
fn restore_pool(schema: &Schema, entries: &[Vec<u32>]) -> Result<IndexPool, String> {
    let pool = IndexPool::new(schema);
    for (i, attrs) in entries.iter().enumerate() {
        if attrs.is_empty() {
            return Err("empty index entry in checkpoint pool".into());
        }
        let id = pool.intern_attrs(&attrs.iter().map(|&a| AttrId(a)).collect::<Vec<_>>());
        if id.0 as usize != i {
            return Err(format!(
                "checkpoint pool entry {i} re-interned as {id} — document reordered?"
            ));
        }
    }
    Ok(pool)
}

/// Resolve saved selection ids through a restored pool.
fn restore_selection(pool: &IndexPool, ids: &[u32]) -> Result<Selection, String> {
    Ok(Selection::from_indexes(
        ids.iter()
            .map(|&id| {
                if id as usize >= pool.len() {
                    return Err(format!("selection references unknown pool id k{id}"));
                }
                Ok(pool.resolve(IndexId(id)))
            })
            .collect::<Result<Vec<_>, String>>()?,
    ))
}

/// Rebuild a sliding window from saved batches under `config`'s
/// aggregation parameters.
fn restore_window(
    schema: &Schema,
    config: &ServiceConfig,
    saved: &[SavedBatch],
    current: &SavedBatch,
) -> Result<EpochWindow, String> {
    let mut window = EpochWindow::new(
        schema.clone(),
        config.epoch_events,
        config.window_epochs,
        config.max_templates,
    );
    if saved.len() > config.window_epochs {
        return Err("checkpoint window longer than window_epochs".into());
    }
    for batch in saved {
        window.window.push_back(load_batch(batch)?);
    }
    window.current = load_batch(current)?;
    if window.current.events >= config.epoch_events {
        return Err("checkpoint current epoch is already sealed".into());
    }
    Ok(window)
}

impl Checkpoint {
    /// Capture the consumer loop's state.
    pub fn capture(
        config: &ServiceConfig,
        tuner: &Tuner,
        window: &EpochWindow,
        ingested: u64,
        invalid: u64,
        dropped: u64,
    ) -> Self {
        let pool = tuner.pool();
        let entries: Vec<Vec<u32>> = (0..pool.len() as u32)
            .map(|id| pool.attrs(IndexId(id)).iter().map(|a| a.0).collect())
            .collect();
        let selection: Vec<u32> = tuner
            .selection()
            .indexes()
            .iter()
            .map(|k| pool.intern(k).0)
            .collect();
        Self {
            version: CHECKPOINT_VERSION,
            config: config.clone(),
            epoch: tuner.epoch(),
            ingested,
            invalid,
            dropped,
            pool: entries,
            selection,
            baseline: tuner.drift_baseline().map(save_workload),
            window: window.window.iter().map(save_batch).collect(),
            current: save_batch(&window.current),
            published: tuner.published().map(|p| (**p).clone()),
            feedback: None,
        }
    }

    /// Attach observed-cost feedback state (see [`crate::feedback`]).
    #[must_use]
    pub fn with_feedback(mut self, feedback: Option<FeedbackCheckpoint>) -> Self {
        self.feedback = feedback;
        self
    }

    /// Rebuild tuner and window state over `schema`.
    ///
    /// The pool is re-interned entry by entry in id order; any divergence
    /// between recorded and reproduced ids (a corrupted or reordered
    /// document) is an error, as is a configuration mismatch.
    pub fn restore(&self, schema: &Schema) -> Result<(Tuner, EpochWindow), String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        let pool = restore_pool(schema, &self.pool)?;
        let selection = restore_selection(&pool, &self.selection)?;
        let baseline = self
            .baseline
            .as_ref()
            .map(|t| load_workload(schema, t))
            .transpose()?;
        let window = restore_window(schema, &self.config, &self.window, &self.current)?;
        let tuner = Tuner::restore(
            self.config.clone(),
            pool,
            selection,
            baseline,
            self.epoch,
            None,
            self.published.clone().map(std::sync::Arc::new),
        );
        Ok((tuner, window))
    }

    /// Serialize to JSON text (one line).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("serialize checkpoint: {e}"))
    }

    /// Parse a checkpoint document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parse checkpoint: {e}"))
    }

    /// Atomically write the checkpoint to `path` (`<path>.tmp` + rename).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Load a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// Saved state of one table group inside a [`ShardCheckpoint`].
///
/// The layout mirrors [`Checkpoint`] minus run-global fields: each group
/// carries its own pool, selection, drift baseline and window. The pool
/// is compacted on capture, so group checkpoints do not grow with
/// selection churn.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupCheckpoint {
    /// Table the group tunes.
    pub table: u16,
    /// Sealed epochs tuned by this group so far.
    pub epoch: u64,
    /// Pool entries in id order, each as its attribute list.
    pub pool: Vec<Vec<u32>>,
    /// Current selection as ids into `pool`.
    pub selection: Vec<u32>,
    /// Drift baseline of the group, if any.
    pub baseline: Option<Vec<SavedTemplate>>,
    /// Sealed window batches, oldest first.
    pub window: Vec<SavedBatch>,
    /// The partially-filled current epoch.
    pub current: SavedBatch,
    /// Frontier published to the arbiter by the group's last
    /// re-selecting epoch, if any (absent in pre-arbitration
    /// checkpoints). Restoring it lets a resumed run answer `whatif`
    /// queries — and compute the merged selection — without re-running
    /// any group from scratch.
    #[serde(default)]
    pub published: Option<PublishedFrontier>,
    /// Observed-cost feedback state of the group (see
    /// [`crate::feedback`]); absent with calibration disabled so those
    /// documents stay byte-identical to earlier releases. Also absent
    /// inside the gate's own last-good snapshots — the rollback target
    /// restores tuning state, never the counters that record the
    /// rollback itself.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub feedback: Option<FeedbackCheckpoint>,
}

impl GroupCheckpoint {
    /// Capture one table group, compacting its pool first (canonical:
    /// the result depends only on the group's logical state, so two runs
    /// that converged to the same state produce identical bytes).
    pub fn capture(tuner: &mut Tuner, window: &EpochWindow) -> Self {
        let table = tuner.scope().expect("group tuners are table-scoped").0;
        tuner.compact_pool();
        let pool = tuner.pool();
        let entries: Vec<Vec<u32>> = (0..pool.len() as u32)
            .map(|id| pool.attrs(IndexId(id)).iter().map(|a| a.0).collect())
            .collect();
        let selection: Vec<u32> =
            tuner.selection().indexes().iter().map(|k| pool.intern(k).0).collect();
        Self {
            table,
            epoch: tuner.epoch(),
            pool: entries,
            selection,
            baseline: tuner.drift_baseline().map(save_workload),
            window: window.window.iter().map(save_batch).collect(),
            current: save_batch(&window.current),
            published: tuner.published().map(|p| (**p).clone()),
            feedback: None,
        }
    }

    /// Attach observed-cost feedback state (see [`crate::feedback`]).
    #[must_use]
    pub fn with_feedback(mut self, feedback: Option<FeedbackCheckpoint>) -> Self {
        self.feedback = feedback;
        self
    }

    /// Serialize to JSON text (one line) — the byte format the
    /// deployment gate stores as its last-good rollback target.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("serialize group checkpoint: {e}"))
    }

    /// Parse a group checkpoint document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parse group checkpoint: {e}"))
    }

    /// Rebuild the group's tuner and window under `config`.
    pub fn restore(
        &self,
        schema: &Schema,
        config: &ServiceConfig,
    ) -> Result<(Tuner, EpochWindow), String> {
        if self.table as usize >= schema.tables().len() {
            return Err(format!("group checkpoint for unknown table t{}", self.table));
        }
        let pool = restore_pool(schema, &self.pool)?;
        let selection = restore_selection(&pool, &self.selection)?;
        let baseline = self.baseline.as_ref().map(|t| load_workload(schema, t)).transpose()?;
        let window = restore_window(schema, config, &self.window, &self.current)?;
        let tuner = Tuner::restore(
            config.clone(),
            pool,
            selection,
            baseline,
            self.epoch,
            Some(TableId(self.table)),
            self.published.clone().map(std::sync::Arc::new),
        );
        Ok((tuner, window))
    }
}

/// One shard's checkpoint document: its table groups plus the shard's
/// share of the lifetime counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// Document schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Configuration the state was produced under.
    pub config: ServiceConfig,
    /// Shard that wrote the file (under the map in force at write time;
    /// informational — restore re-packs groups by the current map).
    pub shard: u32,
    /// Barrier generation the file belongs to; must match the manifest.
    pub generation: u64,
    /// Valid query events this shard ingested.
    pub ingested: u64,
    /// Invalid lines this shard counted.
    pub invalid: u64,
    /// Events dropped from this shard's queue.
    pub dropped: u64,
    /// The shard's table groups, sorted by table id.
    pub groups: Vec<GroupCheckpoint>,
}

impl ShardCheckpoint {
    /// Serialize to JSON text (one line).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("serialize shard checkpoint: {e}"))
    }

    /// Parse a shard checkpoint document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parse shard checkpoint: {e}"))
    }

    /// Atomically write to `path` (`<path>.tmp` + rename).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        atomic_write(path, self.to_json()?.as_bytes())
    }

    /// Load a shard checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// The all-or-nothing commit record of one sharded checkpoint
/// generation, written at the user's checkpoint path after every shard
/// file of that generation is on disk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Document schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Barrier generation this manifest commits.
    pub generation: u64,
    /// Shard count the generation was written under.
    pub shards: u32,
    /// Router lines routed up to the committing barrier (resumes the
    /// periodic-barrier cadence).
    pub routed_lines: u64,
    /// Shard file names (relative to the manifest's directory), one per
    /// shard.
    pub files: Vec<String>,
}

impl Manifest {
    /// Atomically write to `path` (`<path>.tmp` + rename).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json =
            serde_json::to_string(self).map_err(|e| format!("serialize manifest: {e}"))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        // The `.tmp` is on disk, the rename is not — a kill here is the
        // exact torn-manifest window the crash-safe probe must survive.
        crate::fault::fire(crate::fault::CHECKPOINT_MANIFEST, self.generation as u32)?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Load a manifest from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("parse manifest: {e}"))
    }

    /// Load and validate every shard file the manifest names, in order.
    pub fn load_shards(&self, manifest_path: &Path) -> Result<Vec<ShardCheckpoint>, String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "manifest version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        let dir = manifest_path.parent().unwrap_or(Path::new("."));
        self.files
            .iter()
            .map(|name| {
                let cp = ShardCheckpoint::load(&dir.join(name))?;
                if cp.generation != self.generation {
                    return Err(format!(
                        "shard file {name} is generation {}, manifest commits {} — torn \
                         checkpoint set",
                        cp.generation, self.generation
                    ));
                }
                if cp.version != CHECKPOINT_VERSION {
                    return Err(format!("shard file {name} has unsupported version {}", cp.version));
                }
                Ok(cp)
            })
            .collect()
    }
}

/// The shard file path for generation `generation` of shard `shard`,
/// derived from the manifest path: `dir/<stem>.shard-{k}.g{gen}.json`.
pub fn shard_file(manifest: &Path, shard: u32, generation: u64) -> std::path::PathBuf {
    let stem = manifest.file_stem().and_then(|s| s.to_str()).unwrap_or("checkpoint");
    let name = format!("{stem}.shard-{shard}.g{generation}.json");
    match manifest.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(name),
        _ => std::path::PathBuf::from(name),
    }
}

/// Write `bytes` to `path` via `<path>.tmp` + rename.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftThresholds;
    use isel_core::{Parallelism, Trace};
    use isel_workload::synthetic::{self, SyntheticConfig};

    fn workload() -> Workload {
        synthetic::generate(&SyntheticConfig {
            tables: 2,
            attrs_per_table: 10,
            queries_per_table: 12,
            rows_base: 50_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 21,
        })
    }

    fn populated_state() -> (ServiceConfig, Tuner, EpochWindow) {
        let w = workload();
        let config = ServiceConfig {
            epoch_events: 4,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let mut tuner = Tuner::new(w.schema(), config.clone());
        let mut window = EpochWindow::new(w.schema().clone(), 4, 2, 32);
        for q in w.queries().iter().cycle().take(10) {
            if window.push(q) {
                let snap = window.snapshot().unwrap();
                tuner.tune(&snap, Parallelism::serial(), Trace::disabled());
            }
        }
        (config, tuner, window)
    }

    #[test]
    fn capture_restore_round_trips() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 1, 2);
        let (tuner2, window2) = cp.restore(window.schema()).unwrap();
        assert_eq!(tuner2.epoch(), tuner.epoch());
        assert_eq!(tuner2.selection(), tuner.selection());
        assert_eq!(tuner2.pool().len(), tuner.pool().len());
        assert_eq!(tuner2.drift_baseline(), tuner.drift_baseline());
        assert_eq!(window2.sealed_masses(), window.sealed_masses());
        assert_eq!(window2.current_events(), window.current_events());
        // A second capture of the restored state is byte-identical.
        let cp2 = Checkpoint::capture(&config, &tuner2, &window2, 10, 1, 2);
        assert_eq!(cp.to_json().unwrap(), cp2.to_json().unwrap());
    }

    #[test]
    fn json_round_trips() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 0, 0);
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn save_load_is_atomic_and_faithful() {
        let (config, tuner, window) = populated_state();
        let cp = Checkpoint::capture(&config, &tuner, &window, 10, 0, 0);
        let dir = std::env::temp_dir().join("isel-service-cp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        cp.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp file renamed away");
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reordered_pool_is_rejected() {
        let (config, tuner, window) = populated_state();
        let mut cp = Checkpoint::capture(&config, &tuner, &window, 0, 0, 0);
        assert!(cp.pool.len() >= 2, "state must intern multiple entries");
        cp.pool.reverse();
        let err = cp.restore(window.schema()).unwrap_err();
        assert!(err.contains("re-interned"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (config, tuner, window) = populated_state();
        let mut cp = Checkpoint::capture(&config, &tuner, &window, 0, 0, 0);
        cp.version = 99;
        assert!(cp.restore(window.schema()).unwrap_err().contains("version"));
    }

    fn populated_group(seed_offset: usize) -> (ServiceConfig, Tuner, EpochWindow) {
        let w = workload();
        let config = ServiceConfig {
            epoch_events: 4,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let mut tuner = Tuner::for_table(w.schema(), config.clone(), TableId(0));
        let mut window = EpochWindow::new(w.schema().clone(), 4, 2, 32);
        let group: Vec<&Query> =
            w.queries().iter().filter(|q| q.table() == TableId(0)).collect();
        for q in group.iter().cycle().skip(seed_offset).take(10) {
            if window.push(q) {
                let snap = window.snapshot().unwrap();
                tuner.tune(&snap, Parallelism::serial(), Trace::disabled());
            }
        }
        (config, tuner, window)
    }

    #[test]
    fn group_capture_restore_round_trips() {
        let (config, mut tuner, window) = populated_group(0);
        let pool_before = tuner.pool().len();
        let cp = GroupCheckpoint::capture(&mut tuner, &window);
        assert!(
            tuner.pool().len() <= pool_before,
            "capture compacts the pool in place"
        );
        assert_eq!(cp.table, 0);
        let (tuner2, window2) = cp.restore(window.schema(), &config).unwrap();
        assert_eq!(tuner2.epoch(), tuner.epoch());
        assert_eq!(tuner2.selection(), tuner.selection());
        assert_eq!(tuner2.scope(), Some(TableId(0)));
        assert_eq!(tuner2.drift_baseline(), tuner.drift_baseline());
        assert_eq!(window2.sealed_masses(), window.sealed_masses());
        // Re-capture of the restored state is byte-identical (compaction
        // is canonical, so the second compact is a no-op).
        let mut tuner2 = tuner2;
        let cp2 = GroupCheckpoint::capture(&mut tuner2, &window2);
        assert_eq!(cp.to_json_for_test(), cp2.to_json_for_test());
    }

    impl GroupCheckpoint {
        fn to_json_for_test(&self) -> String {
            serde_json::to_string(self).unwrap()
        }
    }

    #[test]
    fn compaction_shrinks_checkpoints_after_churn() {
        // Drive the group through drifting epochs so dead indexes pile
        // up in the pool, then compare checkpoint sizes with and without
        // compaction.
        let (_config, mut tuner, window) = populated_group(3);
        let uncompacted = {
            let pool = tuner.pool();
            let entries: Vec<Vec<u32>> = (0..pool.len() as u32)
                .map(|id| pool.attrs(IndexId(id)).iter().map(|a| a.0).collect())
                .collect();
            serde_json::to_string(&entries).unwrap().len()
        };
        let cp = GroupCheckpoint::capture(&mut tuner, &window);
        let compacted = serde_json::to_string(&cp.pool).unwrap().len();
        assert!(
            compacted <= uncompacted,
            "compacted pool ({compacted} B) must not exceed uncompacted ({uncompacted} B)"
        );
    }

    #[test]
    fn manifest_commits_and_detects_torn_generations() {
        let (config, mut tuner, window) = populated_group(0);
        let dir = std::env::temp_dir().join(format!("isel-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest_path = dir.join("checkpoint.json");

        let group = GroupCheckpoint::capture(&mut tuner, &window);
        let mut files = Vec::new();
        for shard in 0..2u32 {
            let cp = ShardCheckpoint {
                version: CHECKPOINT_VERSION,
                config: config.clone(),
                shard,
                generation: 1,
                ingested: 5,
                invalid: 0,
                dropped: 0,
                groups: vec![group.clone()],
            };
            let path = shard_file(&manifest_path, shard, 1);
            cp.save(&path).unwrap();
            files.push(path.file_name().unwrap().to_str().unwrap().to_owned());
        }
        let manifest = Manifest {
            version: CHECKPOINT_VERSION,
            generation: 1,
            shards: 2,
            routed_lines: 10,
            files,
        };
        manifest.save(&manifest_path).unwrap();

        let loaded = Manifest::load(&manifest_path).unwrap();
        assert_eq!(loaded, manifest);
        let shards = loaded.load_shards(&manifest_path).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].groups[0], group);

        // A shard file from another generation is a torn set.
        let stale = ShardCheckpoint { generation: 7, ..shards[1].clone() };
        stale.save(&shard_file(&manifest_path, 1, 1)).unwrap();
        let err = loaded.load_shards(&manifest_path).unwrap_err();
        assert!(err.contains("torn"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_file_names_embed_shard_and_generation() {
        let p = shard_file(Path::new("/tmp/cp/checkpoint.json"), 3, 12);
        assert_eq!(p, Path::new("/tmp/cp/checkpoint.shard-3.g12.json"));
        let rel = shard_file(Path::new("state.json"), 0, 1);
        assert_eq!(rel, Path::new("state.shard-0.g1.json"));
    }
}
