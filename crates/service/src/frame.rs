//! The binary event frame — a peer encoding to JSONL on sockets and in
//! journals (DESIGN.md §14).
//!
//! # Frame layout
//!
//! ```text
//! +------+---------+-------------+----------+=================+
//! | 0xB1 | version | payload_len |  crc32   |     payload     |
//! | 1 B  |   1 B   |   varint    | 4 B (LE) | payload_len B   |
//! +------+---------+-------------+----------+=================+
//! ```
//!
//! The magic byte `0xB1` is an invalid UTF-8 lead byte, so a reader can
//! distinguish a binary frame from a JSONL line by looking at a single
//! byte — the same cheap dispatch [`crate::shard::classify_line`] does
//! for routing. `payload_len` is capped at [`MAX_PAYLOAD`] so a corrupt
//! length prefix can never make a decoder swallow the rest of the
//! stream. The CRC-32 covers the payload; a mismatch invalidates the
//! whole frame.
//!
//! # Items
//!
//! A payload is a sequence of *items*. Event encoding is dictionary
//! based: a [`WireItem::Define`] assigns the next sequential template id
//! to a `(table, attrs, kind)` shape, and each [`WireItem::Event`] then
//! references its template by id — on template-heavy streams an event
//! costs 2–3 bytes against ~27 bytes of JSONL. Ids are resolved against
//! the same interned dictionaries the service already keeps (the
//! workload schema / `IndexPool` id spaces), so decoding an event is an
//! array lookup, not a parse.
//!
//! | tag | item | fields |
//! |-----|------|--------|
//! | `0` | `Define`  | table varint, kind u8, attr count varint, attr deltas varints |
//! | `1` | `Event` (frequency 1) | template varint |
//! | `2` | `Event` | template varint, frequency varint |
//! | `3` | `Control` | code u8 (0 shutdown, 1 checkpoint, 2 status, 3 whatif + budget varint, 4 tenant + table varint + budget varint, 5 budget + budget varint) |
//! | `4` | `Raw` | length varint, verbatim line bytes |
//! | `5` | `Tagged` | conn varint, seq varint, one inner item (tags 1–3) |
//! | `6` | `Sup` | length varint, supervisor JSON bytes |
//!
//! `Raw` carries a line that has no structured encoding (malformed
//! input, non-canonical field order); it is what makes
//! `journal convert` lossless in both directions. `Tagged` wraps an
//! event or control with the connection/sequence ids a live socket
//! journal records. `Sup` carries a supervisor→worker message on the
//! multi-process control channel (`crate::process`); it has its own tag
//! — rather than riding in `Raw` — so a hostile client line can never
//! forge one, and every event-stream consumer counts it invalid.

use crate::event::Control;
use isel_workload::wire::{crc32, get_varint, put_varint, MAX_VARINT_LEN};
use isel_workload::QueryKind;
use std::collections::HashMap;

/// First byte of every binary frame. `0xB1` can never begin a UTF-8
/// text line, so encodings coexist on one stream and are auto-detected
/// per record.
pub const MAGIC: u8 = 0xB1;

/// Frame format version this build writes and the only one it accepts.
pub const FORMAT_VERSION: u8 = 1;

/// Upper bound on one frame's payload. A corrupt length prefix is
/// rejected immediately instead of consuming the stream.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Upper bound on attributes per defined template (far above any schema
/// this workspace generates; bounds decoder allocations).
pub const MAX_TEMPLATE_ATTRS: u64 = 4096;

const TAG_DEFINE: u8 = 0;
const TAG_EVENT1: u8 = 1;
const TAG_EVENT: u8 = 2;
const TAG_CONTROL: u8 = 3;
const TAG_RAW: u8 = 4;
const TAG_TAGGED: u8 = 5;
const TAG_SUP: u8 = 6;

/// One decoded item of a binary frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireItem {
    /// Assign the next sequential template id to this query shape.
    /// Attributes keep their written order (needed for lossless
    /// round-trips); schema validation happens at the consumer.
    Define {
        /// Table the template queries.
        table: u16,
        /// Read or write template.
        kind: QueryKind,
        /// Accessed attributes, in written order.
        attrs: Vec<u32>,
    },
    /// One execution batch of a previously defined template.
    Event {
        /// Template id assigned by the stream's `Define` sequence.
        template: u64,
        /// Number of executions (≥ 1).
        frequency: u64,
    },
    /// An out-of-band control command.
    Control(Control),
    /// A verbatim line with no structured encoding (bytes exclude the
    /// newline).
    Raw(Vec<u8>),
    /// An event or control tagged with journal connection/sequence ids.
    Tagged {
        /// Monotone connection id assigned by the accepting daemon.
        conn: u64,
        /// Per-connection sequence number.
        seq: u64,
        /// The wrapped event or control (never `Define`, `Raw`, `Sup`
        /// or another `Tagged`).
        item: Box<WireItem>,
    },
    /// A supervisor→worker message (JSON bytes) on the multi-process
    /// control channel. Never valid in an event stream: every ingestion
    /// consumer counts it as one invalid record.
    Sup(Vec<u8>),
}

fn put_control(out: &mut Vec<u8>, c: Control) {
    match c {
        Control::Shutdown => out.push(0),
        Control::Checkpoint => out.push(1),
        Control::Status => out.push(2),
        Control::Whatif { budget } => {
            out.push(3);
            put_varint(out, budget);
        }
        Control::Tenant { table, budget } => {
            out.push(4);
            put_varint(out, u64::from(table));
            put_varint(out, budget);
        }
        Control::Budget { budget } => {
            out.push(5);
            put_varint(out, budget);
        }
        Control::Calibration => out.push(6),
    }
}

fn get_control(b: &[u8], pos: &mut usize) -> Option<Control> {
    let code = *b.get(*pos)?;
    *pos += 1;
    Some(match code {
        0 => Control::Shutdown,
        1 => Control::Checkpoint,
        2 => Control::Status,
        3 => Control::Whatif { budget: get_varint(b, pos)? },
        4 => Control::Tenant {
            table: u16::try_from(get_varint(b, pos)?).ok()?,
            budget: get_varint(b, pos)?,
        },
        5 => Control::Budget { budget: get_varint(b, pos)? },
        6 => Control::Calibration,
        _ => return None,
    })
}

pub(crate) fn put_item(out: &mut Vec<u8>, item: &WireItem) {
    match item {
        WireItem::Define { table, kind, attrs } => {
            out.push(TAG_DEFINE);
            put_varint(out, u64::from(*table));
            out.push(matches!(kind, QueryKind::Update) as u8);
            put_varint(out, attrs.len() as u64);
            let mut prev = 0u32;
            for (i, &a) in attrs.iter().enumerate() {
                // Ascending runs (the canonical sorted form) delta-code
                // to single bytes; out-of-order attrs fall back to the
                // absolute value with a set sign bit.
                if i > 0 && a >= prev {
                    put_varint(out, u64::from(a - prev) << 1);
                } else if i == 0 {
                    put_varint(out, u64::from(a) << 1);
                } else {
                    put_varint(out, (u64::from(a) << 1) | 1);
                }
                prev = a;
            }
        }
        WireItem::Event { template, frequency } => {
            if *frequency == 1 {
                out.push(TAG_EVENT1);
                put_varint(out, *template);
            } else {
                out.push(TAG_EVENT);
                put_varint(out, *template);
                put_varint(out, *frequency);
            }
        }
        WireItem::Control(c) => {
            out.push(TAG_CONTROL);
            put_control(out, *c);
        }
        WireItem::Raw(bytes) => {
            out.push(TAG_RAW);
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        WireItem::Tagged { conn, seq, item } => {
            out.push(TAG_TAGGED);
            put_varint(out, *conn);
            put_varint(out, *seq);
            put_item(out, item);
        }
        WireItem::Sup(bytes) => {
            out.push(TAG_SUP);
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
    }
}

/// Decode one item at `*pos`, advancing past it. `None` means the
/// payload is malformed from `*pos` on — the caller surfaces one
/// invalid record for the remainder of the frame.
pub fn get_item(b: &[u8], pos: &mut usize) -> Option<WireItem> {
    get_item_inner(b, pos, true)
}

fn get_item_inner(b: &[u8], pos: &mut usize, allow_tag: bool) -> Option<WireItem> {
    let tag = *b.get(*pos)?;
    *pos += 1;
    match tag {
        TAG_DEFINE => {
            let table = u16::try_from(get_varint(b, pos)?).ok()?;
            let kind_byte = *b.get(*pos)?;
            *pos += 1;
            let kind = match kind_byte {
                0 => QueryKind::Select,
                1 => QueryKind::Update,
                _ => return None,
            };
            let n = get_varint(b, pos)?;
            if n == 0 || n > MAX_TEMPLATE_ATTRS {
                return None;
            }
            let mut attrs = Vec::with_capacity(n as usize);
            let mut prev = 0u32;
            for i in 0..n {
                let coded = get_varint(b, pos)?;
                let value = u32::try_from(coded >> 1).ok()?;
                let a = if coded & 1 == 0 && i > 0 {
                    prev.checked_add(value)?
                } else {
                    value
                };
                attrs.push(a);
                prev = a;
            }
            Some(WireItem::Define { table, kind, attrs })
        }
        TAG_EVENT1 => Some(WireItem::Event { template: get_varint(b, pos)?, frequency: 1 }),
        TAG_EVENT => {
            let template = get_varint(b, pos)?;
            let frequency = get_varint(b, pos)?;
            if frequency == 0 {
                return None;
            }
            Some(WireItem::Event { template, frequency })
        }
        TAG_CONTROL => Some(WireItem::Control(get_control(b, pos)?)),
        TAG_RAW => {
            let len = usize::try_from(get_varint(b, pos)?).ok()?;
            if len > MAX_PAYLOAD {
                return None;
            }
            let bytes = b.get(*pos..*pos + len)?;
            *pos += len;
            Some(WireItem::Raw(bytes.to_vec()))
        }
        TAG_TAGGED if allow_tag => {
            let conn = get_varint(b, pos)?;
            let seq = get_varint(b, pos)?;
            let item = get_item_inner(b, pos, false)?;
            if matches!(item, WireItem::Define { .. } | WireItem::Raw(_) | WireItem::Sup(_)) {
                return None;
            }
            Some(WireItem::Tagged { conn, seq, item: Box::new(item) })
        }
        TAG_SUP => {
            let len = usize::try_from(get_varint(b, pos)?).ok()?;
            if len > MAX_PAYLOAD {
                return None;
            }
            let bytes = b.get(*pos..*pos + len)?;
            *pos += len;
            Some(WireItem::Sup(bytes.to_vec()))
        }
        _ => None,
    }
}

/// Append a complete frame (header + checksum + `payload`) to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — encoders flush well
/// below the cap.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload over MAX_PAYLOAD");
    out.push(MAGIC);
    out.push(FORMAT_VERSION);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Worst-case header size in bytes (magic + version + varint + crc).
pub const MAX_HEADER: usize = 2 + MAX_VARINT_LEN + 4;

/// Template-dictionary frame encoder: queries are deduplicated into
/// `Define` items on first use and referenced by id afterwards. Items
/// accumulate in an in-memory payload until [`FrameEncoder::flush_into`]
/// (or the [`FrameEncoder::auto_flush_into`] threshold) seals them into
/// one frame.
#[derive(Default)]
pub struct FrameEncoder {
    dict: HashMap<(u16, bool, Vec<u32>), u64>,
    next_template: u64,
    payload: Vec<u8>,
}

/// Payload size at which [`FrameEncoder::auto_flush_into`] seals a
/// frame. Batching amortizes the frame header across many items; the
/// value is far below [`MAX_PAYLOAD`] and fixed, so batch boundaries —
/// and therefore converted bytes — are deterministic.
pub const FLUSH_THRESHOLD: usize = 32 * 1024;

impl FrameEncoder {
    /// Fresh encoder with an empty template dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Template id for `(table, attrs, kind)`, appending a `Define` item
    /// on first use. Attribute order is significant (it is preserved on
    /// the wire for lossless round-trips).
    pub fn template_id(&mut self, table: u16, attrs: &[u32], kind: QueryKind) -> u64 {
        let key = (table, matches!(kind, QueryKind::Update), attrs.to_vec());
        if let Some(&id) = self.dict.get(&key) {
            return id;
        }
        let id = self.next_template;
        self.next_template += 1;
        put_item(
            &mut self.payload,
            &WireItem::Define { table, kind, attrs: attrs.to_vec() },
        );
        self.dict.insert(key, id);
        id
    }

    /// Append one query event, defining its template if new.
    pub fn push_query(&mut self, table: u16, attrs: &[u32], frequency: u64, kind: QueryKind) {
        let template = self.template_id(table, attrs, kind);
        put_item(&mut self.payload, &WireItem::Event { template, frequency });
    }

    /// Append a conn/seq-tagged query event (the live-journal shape).
    pub fn push_tagged_query(
        &mut self,
        conn: u64,
        seq: u64,
        table: u16,
        attrs: &[u32],
        frequency: u64,
        kind: QueryKind,
    ) {
        let template = self.template_id(table, attrs, kind);
        put_item(
            &mut self.payload,
            &WireItem::Tagged {
                conn,
                seq,
                item: Box::new(WireItem::Event { template, frequency }),
            },
        );
    }

    /// Append a control item, optionally conn/seq-tagged.
    pub fn push_control(&mut self, control: Control, tag: Option<(u64, u64)>) {
        let item = WireItem::Control(control);
        match tag {
            Some((conn, seq)) => put_item(
                &mut self.payload,
                &WireItem::Tagged { conn, seq, item: Box::new(item) },
            ),
            None => put_item(&mut self.payload, &item),
        }
    }

    /// Append a verbatim line (no structured encoding).
    pub fn push_raw(&mut self, bytes: &[u8]) {
        put_item(&mut self.payload, &WireItem::Raw(bytes.to_vec()));
    }

    /// Bytes currently buffered in the unsealed payload.
    pub fn pending(&self) -> usize {
        self.payload.len()
    }

    /// Seal the buffered items into one frame appended to `out`. A
    /// no-op when nothing is buffered (no empty frames on the wire).
    pub fn flush_into(&mut self, out: &mut Vec<u8>) {
        if self.payload.is_empty() {
            return;
        }
        put_frame(out, &self.payload);
        self.payload.clear();
    }

    /// [`flush_into`](Self::flush_into) only once the buffered payload
    /// reaches [`FLUSH_THRESHOLD`] — the batching mode `journal convert`
    /// uses.
    pub fn auto_flush_into(&mut self, out: &mut Vec<u8>) {
        if self.payload.len() >= FLUSH_THRESHOLD {
            self.flush_into(out);
        }
    }

    /// Forget every defined template. For writers that start a fresh,
    /// self-contained output (rotated journals do *not* reset — their
    /// readers replay segments concatenated under one id space).
    pub fn reset_dict(&mut self) {
        self.dict.clear();
        self.next_template = 0;
    }
}

/// A canonically-rendered JSONL line, parsed without a schema. Used by
/// `journal convert` and the binary journal writer to decide whether a
/// line has a structured encoding ([`parse_canonical`]) and to render
/// decoded items back to text ([`render_query`] / [`render_control`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanonicalBody {
    /// `{"table":T,"attrs":[..](,"frequency":F)(,"kind":"Update")}`.
    Query {
        /// Table id.
        table: u16,
        /// Attribute ids, in written order.
        attrs: Vec<u32>,
        /// Frequency (rendered only when ≠ 1).
        frequency: u64,
        /// Kind (rendered only when `Update`).
        kind: QueryKind,
    },
    /// `{"control":"shutdown"|"checkpoint"|"status"}`.
    Control(Control),
}

#[derive(serde::Deserialize)]
struct CanonRaw {
    conn: Option<u64>,
    seq: Option<u64>,
    control: Option<String>,
    table: Option<u16>,
    attrs: Option<Vec<u32>>,
    frequency: Option<u64>,
    kind: Option<QueryKind>,
    budget: Option<u64>,
    table_group: Option<u16>,
}

/// Render the canonical text of a query event, with an optional
/// `{"conn":C,"seq":S,` prefix. This is the exact byte shape `record`
/// and the JSONL journal produce.
pub fn render_query(
    tag: Option<(u64, u64)>,
    table: u16,
    attrs: &[u32],
    frequency: u64,
    kind: QueryKind,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{");
    if let Some((conn, seq)) = tag {
        let _ = write!(s, "\"conn\":{conn},\"seq\":{seq},");
    }
    let _ = write!(s, "\"table\":{table},\"attrs\":[");
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{a}");
    }
    s.push(']');
    if frequency != 1 {
        let _ = write!(s, ",\"frequency\":{frequency}");
    }
    if matches!(kind, QueryKind::Update) {
        s.push_str(",\"kind\":\"Update\"");
    }
    s.push('}');
    s
}

/// Render the canonical text of a control line, with an optional
/// conn/seq prefix.
pub fn render_control(tag: Option<(u64, u64)>, control: Control) -> String {
    let body = match control {
        Control::Shutdown => "\"control\":\"shutdown\"".to_owned(),
        Control::Checkpoint => "\"control\":\"checkpoint\"".to_owned(),
        Control::Status => "\"control\":\"status\"".to_owned(),
        Control::Whatif { budget } => format!("\"control\":\"whatif\",\"budget\":{budget}"),
        Control::Tenant { table, budget } => {
            format!("\"control\":\"tenant\",\"table_group\":{table},\"budget\":{budget}")
        }
        Control::Budget { budget } => format!("\"control\":\"budget\",\"budget\":{budget}"),
        Control::Calibration => "\"control\":\"calibration\"".to_owned(),
    };
    match tag {
        Some((conn, seq)) => format!("{{\"conn\":{conn},\"seq\":{seq},{body}}}"),
        None => format!("{{{body}}}"),
    }
}

/// Parse a line into its canonical form, returning `None` unless
/// re-rendering reproduces the input **byte for byte**. That rule is
/// what makes structured encoding safe in a lossless converter: any
/// line the canonical form cannot reproduce (extra fields, whitespace,
/// non-default field order, explicit defaults) is carried as
/// [`WireItem::Raw`] instead. No schema is consulted.
pub fn parse_canonical(line: &str) -> Option<(Option<(u64, u64)>, CanonicalBody)> {
    let raw: CanonRaw = serde_json::from_str(line).ok()?;
    let tag = match (raw.conn, raw.seq) {
        (Some(c), Some(s)) => Some((c, s)),
        (None, None) => None,
        _ => return None,
    };
    let (body, rendered) = if let Some(control) = raw.control {
        let control = match control.as_str() {
            "shutdown" => Control::Shutdown,
            "checkpoint" => Control::Checkpoint,
            "status" => Control::Status,
            "whatif" => Control::Whatif { budget: raw.budget? },
            "tenant" => Control::Tenant { table: raw.table_group?, budget: raw.budget? },
            "budget" => Control::Budget { budget: raw.budget? },
            "calibration" => Control::Calibration,
            _ => return None,
        };
        (CanonicalBody::Control(control), render_control(tag, control))
    } else {
        let table = raw.table?;
        let attrs = raw.attrs?;
        if attrs.is_empty() {
            return None;
        }
        let frequency = raw.frequency.unwrap_or(1);
        if frequency == 0 {
            return None;
        }
        let kind = raw.kind.unwrap_or_default();
        let rendered = render_query(tag, table, &attrs, frequency, kind);
        (CanonicalBody::Query { table, attrs, frequency, kind }, rendered)
    };
    (rendered == line).then_some((tag, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(items: &[WireItem]) -> Vec<WireItem> {
        let mut payload = Vec::new();
        for item in items {
            put_item(&mut payload, item);
        }
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < payload.len() {
            out.push(get_item(&payload, &mut pos).expect("valid item"));
        }
        out
    }

    #[test]
    fn items_round_trip() {
        let items = vec![
            WireItem::Define { table: 3, kind: QueryKind::Select, attrs: vec![6, 7, 8] },
            WireItem::Define { table: 9, kind: QueryKind::Update, attrs: vec![40, 2, 40] },
            WireItem::Event { template: 0, frequency: 1 },
            WireItem::Event { template: 1, frequency: 900 },
            WireItem::Control(Control::Checkpoint),
            WireItem::Raw(b"not json at all".to_vec()),
            WireItem::Tagged {
                conn: 2,
                seq: 77,
                item: Box::new(WireItem::Event { template: 0, frequency: 1 }),
            },
            WireItem::Tagged {
                conn: 1,
                seq: 1,
                item: Box::new(WireItem::Control(Control::Shutdown)),
            },
            WireItem::Control(Control::Whatif { budget: 1 << 40 }),
            WireItem::Control(Control::Tenant { table: 513, budget: 0 }),
            WireItem::Tagged {
                conn: 4,
                seq: 2,
                item: Box::new(WireItem::Control(Control::Whatif { budget: 9 })),
            },
            WireItem::Control(Control::Budget { budget: 1 << 33 }),
            WireItem::Control(Control::Calibration),
            WireItem::Sup(br#"{"hello":true}"#.to_vec()),
        ];
        assert_eq!(round_trip(&items), items);
    }

    #[test]
    fn descending_attr_lists_survive() {
        // Non-sorted orders use the absolute fallback encoding.
        let items =
            vec![WireItem::Define { table: 0, kind: QueryKind::Select, attrs: vec![9, 3, 5, 2] }];
        assert_eq!(round_trip(&items), items);
    }

    #[test]
    fn malformed_items_decode_to_none() {
        for bad in [
            &[99u8][..],                      // unknown tag
            &[TAG_DEFINE, 0, 7][..],          // bad kind byte
            &[TAG_DEFINE, 0, 0, 0][..],       // zero attrs
            &[TAG_CONTROL, 9][..],            // unknown control code
            &[TAG_EVENT, 0, 0][..],           // zero frequency
            &[TAG_RAW, 0x20][..],             // raw length past the end
            &[TAG_TAGGED, 1, 1, TAG_RAW, 0][..], // raw inside a tag
            &[TAG_TAGGED, 1, 1, TAG_TAGGED][..], // nested tags
            &[TAG_TAGGED, 1, 1, TAG_SUP, 0][..], // sup inside a tag
            &[TAG_SUP, 0x20][..],             // sup length past the end
            &[][..],                          // empty
        ] {
            let mut pos = 0;
            assert_eq!(get_item(bad, &mut pos), None, "bytes {bad:?}");
        }
    }

    #[test]
    fn encoder_defines_each_template_once() {
        let mut enc = FrameEncoder::new();
        enc.push_query(2, &[6, 7, 8], 1, QueryKind::Select);
        enc.push_query(2, &[6, 7, 8], 1, QueryKind::Select);
        enc.push_query(2, &[6, 7, 8], 5, QueryKind::Select);
        let mut out = Vec::new();
        enc.flush_into(&mut out);
        assert_eq!(out[0], MAGIC);
        assert_eq!(out[1], FORMAT_VERSION);
        let mut pos = 2;
        let len = get_varint(&out, &mut pos).unwrap() as usize;
        let payload = &out[pos + 4..pos + 4 + len];
        assert_eq!(crc32(payload).to_le_bytes(), out[pos..pos + 4]);
        let mut items = Vec::new();
        let mut p = 0;
        while p < payload.len() {
            items.push(get_item(payload, &mut p).unwrap());
        }
        assert_eq!(items.len(), 4, "one define + three events");
        assert!(matches!(items[0], WireItem::Define { .. }));
        assert_eq!(items[1], WireItem::Event { template: 0, frequency: 1 });
        assert_eq!(items[3], WireItem::Event { template: 0, frequency: 5 });
        // Nothing pending, so another flush writes nothing.
        let before = out.len();
        enc.flush_into(&mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn canonical_parse_accepts_exact_renders_only() {
        for line in [
            r#"{"table":2,"attrs":[6,7,8]}"#,
            r#"{"table":0,"attrs":[1],"frequency":9}"#,
            r#"{"table":0,"attrs":[1],"kind":"Update"}"#,
            r#"{"conn":1,"seq":4,"table":2,"attrs":[6]}"#,
            r#"{"control":"shutdown"}"#,
            r#"{"conn":3,"seq":9,"control":"status"}"#,
            r#"{"control":"whatif","budget":4096}"#,
            r#"{"control":"tenant","table_group":2,"budget":77}"#,
            r#"{"control":"budget","budget":65536}"#,
            r#"{"control":"calibration"}"#,
        ] {
            let (tag, body) = parse_canonical(line).unwrap_or_else(|| panic!("rejected {line}"));
            let back = match body {
                CanonicalBody::Query { table, attrs, frequency, kind } => {
                    render_query(tag, table, &attrs, frequency, kind)
                }
                CanonicalBody::Control(c) => render_control(tag, c),
            };
            assert_eq!(back, line);
        }
    }

    #[test]
    fn non_canonical_lines_are_rejected() {
        for line in [
            r#"{"table":2,"attrs":[6,7,8]} "#,             // trailing space
            r#"{ "table":2,"attrs":[6]}"#,                 // inner space
            r#"{"attrs":[6],"table":2}"#,                  // field order
            r#"{"table":2,"attrs":[6],"frequency":1}"#,    // explicit default
            r#"{"table":2,"attrs":[6],"kind":"Select"}"#,  // explicit default
            r#"{"table":2,"attrs":[]}"#,                   // empty attrs
            r#"{"table":2,"attrs":[6],"frequency":0}"#,    // zero frequency
            r#"{"table":2,"attrs":[6],"extra":1}"#,        // unknown field
            r#"{"conn":1,"table":2,"attrs":[6]}"#,         // conn without seq
            r#"{"control":"reboot"}"#,                     // unknown control
            "not json",
        ] {
            assert_eq!(parse_canonical(line), None, "accepted {line}");
        }
    }
}
