//! Table-group sharding: event classification and shard placement.
//!
//! The paper's H6 recursion is per-query/per-index local, queries touch
//! exactly one table, and indexes are per-table — so the selection
//! problem decomposes by *table group*. The router exploits that: a
//! [`ShardMap`] places every table group on one of `N` shards, and
//! [`classify_line`] extracts the routing key from a raw JSONL line with
//! a single byte scan, leaving the full parse/validate work to the shard
//! workers (which is what makes routing cheaper than ingesting and the
//! fan-out a throughput win).
//!
//! Placement never affects results: the unit of tuning state is the
//! table group at every shard count, so moving a group between shards
//! (including resuming a checkpoint at a different `--shards`) changes
//! scheduling only.
//!
//! Binary-framed input (see [`crate::frame`]) never reaches
//! [`classify_line`]: frames start with a magic byte that is invalid as
//! a UTF-8 lead, so [`crate::records::RecordIter`] splits the stream
//! first and the router routes decoded items by their template's table —
//! cheaper still than the byte scan.

use isel_core::{TraceEvent, TraceSink};
use std::collections::BTreeMap;

/// Routing classification of one raw input line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineClass {
    /// A line whose top-level `"table"` key holds `t` — route to
    /// `shard_of(t)`. The full parse still happens on the shard; the
    /// classifier only extracts the routing key.
    Table(u16),
    /// A line with a top-level `"control"` key and no `"table"` key —
    /// handled by the router itself.
    Control,
    /// Anything else (malformed JSON, missing keys, out-of-range table
    /// numbers). Routed to a fixed shard so it is counted as invalid
    /// exactly once.
    Opaque,
}

/// Classify one line by scanning for its top-level `"table"` (or
/// `"control"`) key without parsing the JSON.
///
/// The scan tracks string state (with escapes) and brace/bracket depth,
/// so a `"table"` key nested inside an ignored object or embedded in a
/// string value is never mistaken for the routing key. For any line the
/// event parser accepts, the extracted table equals the parsed one:
/// valid lines have exactly one top-level `"table"` key (duplicate keys
/// are a parse error), which is exactly what the scan finds.
pub fn classify_line(line: &str) -> LineClass {
    let b = line.as_bytes();
    // Fast path: the overwhelmingly common recorded-log shape.
    if let Some(rest) = b.strip_prefix(b"{\"table\":") {
        if let Some(t) = leading_u16(rest) {
            return LineClass::Table(t);
        }
    }
    let mut depth = 0i32;
    let mut i = 0usize;
    let mut in_str = false;
    let mut str_start = 0usize;
    let mut saw_control = false;
    while i < b.len() {
        let c = b[i];
        if in_str {
            if c == b'\\' {
                i += 2; // skip the escaped byte ('"', '\\', ...)
                continue;
            }
            if c == b'"' {
                in_str = false;
                if depth == 1 {
                    // A string at top level is a key iff a ':' follows.
                    let mut j = i + 1;
                    while j < b.len() && b[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b':' {
                        let content = &b[str_start..i];
                        if content == b"table" {
                            let mut v = j + 1;
                            while v < b.len() && b[v].is_ascii_whitespace() {
                                v += 1;
                            }
                            return match leading_u16(&b[v..]) {
                                Some(t) => LineClass::Table(t),
                                None => LineClass::Opaque,
                            };
                        }
                        if content == b"control" {
                            saw_control = true;
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                str_start = i + 1;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    if saw_control {
        LineClass::Control
    } else {
        LineClass::Opaque
    }
}

/// Parse the decimal digits at the head of `b` into a `u16`.
fn leading_u16(b: &[u8]) -> Option<u16> {
    let mut v: u32 = 0;
    let mut any = false;
    for &c in b {
        if !c.is_ascii_digit() {
            break;
        }
        any = true;
        v = v.saturating_mul(10).saturating_add((c - b'0') as u32);
        if v > u16::MAX as u32 {
            return None;
        }
    }
    any.then_some(v as u16)
}

/// Placement of table groups onto shards.
///
/// Resolution order for a table `t`:
/// 1. an explicit `shard_map` entry,
/// 2. the default for schema tables: `t`'s own shard when there are at
///    least as many shards as tables, else round-robin packing
///    (`t mod shards`),
/// 3. rendezvous hashing for tables outside the schema — deterministic,
///    so a stream of events against an unknown table is always counted
///    invalid by the same shard.
#[derive(Clone, Debug)]
pub struct ShardMap {
    shards: u32,
    explicit: BTreeMap<u16, u32>,
    schema_tables: u16,
}

impl ShardMap {
    /// Build a map for `shards` workers over a schema with
    /// `schema_tables` tables.
    ///
    /// # Errors
    ///
    /// Rejects `shards == 0` and explicit placements onto nonexistent
    /// shards.
    pub fn new(
        shards: u32,
        explicit: BTreeMap<u16, u32>,
        schema_tables: usize,
    ) -> Result<Self, String> {
        if shards == 0 {
            return Err("a router needs at least one shard".into());
        }
        for (&table, &shard) in &explicit {
            if shard >= shards {
                return Err(format!(
                    "shard_map places table {table} on shard {shard}, but only {shards} shards exist"
                ));
            }
        }
        let schema_tables =
            u16::try_from(schema_tables).map_err(|_| "schema has more than u16::MAX tables")?;
        Ok(Self { shards, explicit, schema_tables })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard serving table `t`.
    pub fn shard_of(&self, t: u16) -> u32 {
        if let Some(&s) = self.explicit.get(&t) {
            return s;
        }
        if t < self.schema_tables {
            return u32::from(t) % self.shards;
        }
        self.rendezvous(t)
    }

    /// The shard that counts unclassifiable (opaque) lines.
    pub fn opaque_shard(&self) -> u32 {
        0
    }

    /// Highest-random-weight placement for tables outside the schema.
    fn rendezvous(&self, t: u16) -> u32 {
        (0..self.shards)
            .max_by_key(|&k| (splitmix64((u64::from(t) << 32) | u64::from(k)), std::cmp::Reverse(k)))
            .expect("shards >= 1")
    }
}

/// SplitMix64 finalizer — cheap, well-mixed scoring for rendezvous
/// hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Trace sink adapter stamping the shard id onto run envelopes.
///
/// Strategies always emit `shard: None`; wrapping a shard worker's sink
/// in this adapter rewrites [`TraceEvent::RunStart`] and
/// [`TraceEvent::RunEnd`] so every run in a per-shard trace file is
/// attributable without changing any other event.
pub struct ShardTagSink<'a> {
    shard: u32,
    inner: &'a dyn TraceSink,
}

impl<'a> ShardTagSink<'a> {
    /// Tag every run envelope recorded through `inner` with `shard`.
    pub fn new(shard: u32, inner: &'a dyn TraceSink) -> Self {
        Self { shard, inner }
    }
}

impl TraceSink for ShardTagSink<'_> {
    fn record(&self, event: TraceEvent) {
        let tagged = match event {
            TraceEvent::RunStart { strategy, queries, total_width, budget, .. } => {
                TraceEvent::RunStart {
                    strategy,
                    queries,
                    total_width,
                    budget,
                    shard: Some(self.shard),
                }
            }
            TraceEvent::RunEnd {
                strategy,
                steps,
                issued,
                cached,
                initial_cost,
                final_cost,
                micros,
                ..
            } => TraceEvent::RunEnd {
                strategy,
                steps,
                issued,
                cached,
                initial_cost,
                final_cost,
                micros,
                shard: Some(self.shard),
            },
            other => other,
        };
        self.inner.record(tagged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isel_core::VecSink;

    #[test]
    fn classifies_common_event_shapes() {
        assert_eq!(classify_line(r#"{"table":2,"attrs":[6,7,8]}"#), LineClass::Table(2));
        assert_eq!(
            classify_line(r#"{"attrs":[1],"frequency":3,"table":7}"#),
            LineClass::Table(7)
        );
        assert_eq!(classify_line(r#"{ "table" : 11 , "attrs":[0]}"#), LineClass::Table(11));
        assert_eq!(classify_line(r#"{"control":"shutdown"}"#), LineClass::Control);
        assert_eq!(classify_line(r#"{"control":"checkpoint"}"#), LineClass::Control);
    }

    #[test]
    fn nested_and_quoted_table_keys_are_not_routing_keys() {
        // "table" inside a string value.
        assert_eq!(
            classify_line(r#"{"note":"\"table\":9","table":2,"attrs":[0]}"#),
            LineClass::Table(2)
        );
        // "table" as a *value*, not a key.
        assert_eq!(classify_line(r#"{"kind":"table","table":3,"attrs":[0]}"#), LineClass::Table(3));
        // "table" nested in an ignored object — the top-level key wins.
        assert_eq!(
            classify_line(r#"{"meta":{"table":9},"table":2,"attrs":[0]}"#),
            LineClass::Table(2)
        );
        // Only a nested occurrence: no top-level key at all.
        assert_eq!(classify_line(r#"{"meta":{"table":9}}"#), LineClass::Opaque);
    }

    #[test]
    fn garbage_is_opaque_not_fatal() {
        for junk in [
            "",
            "not json",
            "{\"table\":",
            r#"{"table":"x","attrs":[0]}"#,
            r#"{"table":99999999,"attrs":[0]}"#, // > u16::MAX
            r#"{"table":-3}"#,
            "\u{0}\u{1}\u{2}",
            "{\"attrs\":[0]}",
            "[1,2,3]",
            "{\"a\":\"unterminated",
        ] {
            assert_eq!(classify_line(junk), LineClass::Opaque, "line: {junk:?}");
        }
    }

    #[test]
    fn explicit_map_overrides_defaults() {
        let map =
            ShardMap::new(2, [(0u16, 1u32)].into_iter().collect(), 3).unwrap();
        assert_eq!(map.shard_of(0), 1, "explicit placement wins");
        assert_eq!(map.shard_of(1), 1, "default packing: 1 % 2");
        assert_eq!(map.shard_of(2), 0, "default packing: 2 % 2");
    }

    #[test]
    fn one_shard_per_table_when_shards_cover_tables() {
        let map = ShardMap::new(4, BTreeMap::new(), 3).unwrap();
        for t in 0..3u16 {
            assert_eq!(map.shard_of(t), u32::from(t));
        }
    }

    #[test]
    fn unknown_tables_rendezvous_deterministically() {
        let map = ShardMap::new(3, BTreeMap::new(), 2).unwrap();
        let placed: Vec<u32> = (100u16..120).map(|t| map.shard_of(t)).collect();
        let again: Vec<u32> = (100u16..120).map(|t| map.shard_of(t)).collect();
        assert_eq!(placed, again);
        assert!(placed.iter().all(|&s| s < 3));
        // The hash should actually spread placements around.
        assert!(placed.iter().collect::<std::collections::BTreeSet<_>>().len() > 1);
    }

    #[test]
    fn invalid_maps_are_rejected() {
        assert!(ShardMap::new(0, BTreeMap::new(), 1).is_err());
        assert!(ShardMap::new(2, [(5u16, 2u32)].into_iter().collect(), 1).is_err());
    }

    #[test]
    fn tag_sink_stamps_run_envelopes_only() {
        let sink = VecSink::new();
        let tag = ShardTagSink::new(3, &sink);
        tag.record(TraceEvent::RunStart {
            strategy: "H6".into(),
            queries: 1,
            total_width: 2,
            budget: 10,
            shard: None,
        });
        tag.record(TraceEvent::Epoch {
            epoch: 0,
            policy: "adapt".into(),
            indexes: 1,
            workload_cost: 1.0,
            reconfig_paid: 0.0,
        });
        let events = sink.take();
        match &events[0] {
            TraceEvent::RunStart { shard, .. } => assert_eq!(*shard, Some(3)),
            other => panic!("expected RunStart, got {other:?}"),
        }
        assert!(matches!(&events[1], TraceEvent::Epoch { .. }));
    }
}
