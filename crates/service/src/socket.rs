//! Unix-domain-socket ingestion for live serving.
//!
//! [`run_socket`] binds a socket, accepts any number of concurrent
//! connections, and feeds every line through the same parse/validate
//! path as the stdin reader — always with the drop-oldest overload
//! policy (a live daemon must never stall its clients on backpressure;
//! it sheds load and counts the shed). A `{"control":"shutdown"}` line
//! on *any* connection stops the accept loop, closes the queue, and the
//! daemon drains and checkpoints as usual.
//!
//! # Deterministic cross-client order
//!
//! Event order across concurrent connections is arrival order, which is
//! inherently racy. To make a live run *auditable*, every accepted
//! connection is assigned a monotone connection id and each of its
//! lines a per-connection sequence number. When a journal path is
//! given, every line is rewritten as
//! `{"conn":C,"seq":S,...original fields...}` and appended to the
//! journal *in the exact order the daemon consumed it* — the journal
//! lock is held across both the journal write and the queue push, so
//! journal order is queue order. Replaying the journal through
//! [`crate::Daemon::run_reader`] (or the sharded
//! [`crate::Router`](crate::router::Router)) reproduces the live run
//! bit-for-bit: the event parser ignores the `conn`/`seq` fields, so
//! the journal parses exactly like the original stream.
//!
//! A `{"control":"status"}` line is answered out of band: the daemon
//! writes one JSON status line back on the same connection without
//! queuing anything.

use crate::daemon::{ingest_one, Daemon, Ingest, OverloadPolicy, ServiceReport, WorkItem};
use crate::frame::WireItem;
use crate::journal::{render_item_line, JournalConfig, JournalWriter};
use crate::queue::BoundedQueue;
use crate::records::{DecodeDict, Record, RecordIter};
use crate::status::{take_status_signal, StatusBoard};
use isel_core::Trace;
use isel_workload::Schema;
use std::io::{BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Accept-loop poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Shared state handed to every connection handler.
struct ConnCtx<'a> {
    schema: &'a Schema,
    queue: &'a BoundedQueue<WorkItem>,
    stop: &'a AtomicBool,
    board: &'a StatusBoard,
    journal: Option<&'a Mutex<JournalWriter>>,
    base_dropped: u64,
}

/// Serve `daemon` on a Unix-domain socket at `path` until a `shutdown`
/// control arrives, then drain, checkpoint and report. A stale socket
/// file at `path` is replaced.
///
/// When `journal` is given, every accepted event is appended there
/// tagged with its connection id and per-connection sequence number, in
/// consumption order (see the module docs for the replay contract). The
/// journal may be JSONL or binary and may rotate into segments — see
/// [`JournalConfig`]; both encodings replay identically.
///
/// Clients may likewise send either encoding (even mixed on one
/// connection): binary items are rendered back to their canonical line
/// form and fed through the same ingest path, so journaling and replay
/// semantics are identical no matter how an event arrived.
///
/// Connection handlers read until their peer disconnects, so the final
/// drain completes once every client has hung up — clients should close
/// their end after (or instead of) sending `shutdown`.
pub fn run_socket(
    daemon: &mut Daemon,
    path: &Path,
    checkpoint: Option<&Path>,
    journal: Option<&JournalConfig>,
    trace: Trace<'_>,
) -> Result<ServiceReport, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let journal = match journal {
        Some(cfg) => Some(Mutex::new(JournalWriter::create(cfg.clone())?)),
        None => None,
    };
    let queue = BoundedQueue::new(daemon.config().queue_capacity);
    let board = daemon.status_board();
    let stop = AtomicBool::new(false);
    let schema = daemon.schema().clone();
    let base_dropped = daemon.base_dropped();
    let ctx = ConnCtx {
        schema: &schema,
        queue: &queue,
        stop: &stop,
        board: &board,
        journal: journal.as_ref(),
        base_dropped,
    };

    let result = std::thread::scope(|s| {
        let ctx_ref = &ctx;
        s.spawn(move || {
            let conn_ids = AtomicU64::new(0);
            while !ctx_ref.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
                        s.spawn(move || serve_connection(ctx_ref, stream, conn));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if take_status_signal() {
                            eprintln!(
                                "{}",
                                ctx_ref.board.line(
                                    ctx_ref.base_dropped + ctx_ref.queue.dropped(),
                                    &[ctx_ref.queue.len() as u64],
                                )
                            );
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            ctx_ref.queue.close();
        });
        daemon.consume(&queue, &board, checkpoint, trace)
    });
    if let Some(j) = journal {
        let writer = match j.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        let errors = writer.finish();
        if errors > 0 {
            return Err(format!("journal write errors: {errors}"));
        }
    }
    std::fs::remove_file(path).ok();
    let (outcomes, written) = result?;
    Ok(daemon.report(outcomes, &queue, &board, written))
}

/// Per-connection reader: ingest records with the drop-oldest policy
/// until the peer disconnects or a shutdown control arrives. `conn` is
/// the monotone connection id used for journal tagging.
///
/// Records may be JSONL lines or binary frames (auto-detected per record
/// by the magic byte). Binary items are rendered to their canonical line
/// form through a per-connection template dictionary, then flow through
/// the exact same journal/ingest path as lines — so the journal is
/// encoding-agnostic and replay matches live behaviour either way.
fn serve_connection(ctx: &ConnCtx<'_>, stream: UnixStream, conn: u64) {
    let mut writer = stream.try_clone().ok();
    let mut dict = DecodeDict::new();
    let mut seq = 0u64;
    for record in RecordIter::new(BufReader::new(stream)) {
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        let line = match record {
            Record::Line(line) => line,
            Record::Item(item) => {
                if let WireItem::Define { .. } = item {
                    // Defines only update the connection's dictionary;
                    // events re-render as self-contained lines, so the
                    // journal stays definition-free.
                    render_item_line(&mut dict, &item);
                    continue;
                }
                match render_item_line(&mut dict, &item) {
                    Some(line) => line,
                    None => {
                        // Undecodable item (e.g. unknown template id):
                        // counted invalid exactly like a bad line.
                        ctx.board.invalid.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            Record::Corrupt => {
                ctx.board.invalid.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        seq += 1;
        let verdict = match ctx.journal {
            Some(j) => {
                // Hold the lock across journal-write AND queue-push so the
                // journal records the exact order events entered the queue.
                let mut g = match j.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                g.write_line(conn, seq, &line);
                ingest_one(&line, ctx.schema, ctx.queue, OverloadPolicy::DropOldest, ctx.board)
            }
            None => {
                ingest_one(&line, ctx.schema, ctx.queue, OverloadPolicy::DropOldest, ctx.board)
            }
        };
        match verdict {
            Ingest::Continue => {}
            Ingest::Status => {
                if let Some(w) = writer.as_mut() {
                    let _ = writeln!(
                        w,
                        "{}",
                        ctx.board.line(
                            ctx.base_dropped + ctx.queue.dropped(),
                            &[ctx.queue.len() as u64],
                        )
                    );
                }
            }
            Ingest::Shutdown => {
                // Shutdown control: stop accepting and let the daemon drain.
                ctx.stop.store(true, Ordering::Relaxed);
                ctx.queue.close();
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DriftThresholds, ServiceConfig};
    use isel_workload::synthetic::{self, SyntheticConfig};
    use std::io::Read;

    fn test_setup() -> (isel_workload::Workload, ServiceConfig, std::path::PathBuf) {
        let w = synthetic::generate(&SyntheticConfig {
            tables: 1,
            attrs_per_table: 8,
            queries_per_table: 10,
            rows_base: 20_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 44,
        });
        let cfg = ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let dir = std::env::temp_dir().join("isel-service-socket-test");
        std::fs::create_dir_all(&dir).unwrap();
        (w, cfg, dir)
    }

    fn event_lines(w: &isel_workload::Workload, n: usize) -> Vec<String> {
        w.queries()[..n]
            .iter()
            .map(|q| {
                let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
                format!("{{\"table\":{},\"attrs\":[{}]}}", q.table().0, attrs.join(","))
            })
            .collect()
    }

    #[test]
    fn socket_round_trip_with_shutdown() {
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-{}.sock", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                // Wait for the listener to come up, then stream events.
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            run_socket(&mut daemon, &sock, None, None, Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 8);
        assert_eq!(report.epochs.len(), 1, "8 events seal one epoch");
        assert!(!report.final_selection.is_empty());
        assert!(!sock.exists(), "socket file cleaned up");
    }

    #[test]
    fn journal_records_arrival_order_and_status_replies() {
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-journal-{}.sock", std::process::id()));
        let journal = dir.join(format!("isel-journal-{}.jsonl", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                stream.write_all(b"{\"control\":\"status\"}\n").unwrap();
                // The status reply comes back on this connection as one
                // JSON line before anything else is written to it.
                let mut reply = Vec::new();
                let mut byte = [0u8; 1];
                loop {
                    stream.read_exact(&mut byte).unwrap();
                    if byte[0] == b'\n' {
                        break;
                    }
                    reply.push(byte[0]);
                }
                let reply = String::from_utf8(reply).unwrap();
                assert!(reply.contains("\"ingested\":8"), "status reply: {reply}");
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            let jcfg = JournalConfig {
                path: journal.clone(),
                format: crate::journal::WireFormat::Jsonl,
                max_bytes: None,
            };
            run_socket(&mut daemon, &sock, None, Some(&jcfg), Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 8);

        // Journal lines carry conn/seq tags in increasing per-connection
        // order, and the control lines are journaled too.
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10, "8 events + status + shutdown journaled");
        let mut last_seq = 0u64;
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert_eq!(v.get("conn").and_then(|c| c.as_u64()), Some(1));
            let seq = v.get("seq").and_then(|s| s.as_u64()).unwrap();
            assert!(seq > last_seq, "sequence numbers strictly increase");
            last_seq = seq;
        }

        // Replaying the journal through the deterministic reader
        // reproduces the live outcome: RawLine ignores conn/seq.
        let mut replay = Daemon::new(w.schema().clone(), cfg).unwrap();
        let rep = replay
            .run_reader(
                std::io::Cursor::new(text),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(rep.ingested, report.ingested);
        assert_eq!(rep.epochs.len(), report.epochs.len());
        assert_eq!(
            rep.final_selection.indexes(),
            report.final_selection.indexes()
        );
        std::fs::remove_file(&journal).ok();
    }
}
