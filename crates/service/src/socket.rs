//! Unix-domain-socket ingestion for live serving.
//!
//! [`run_socket`] binds a socket, accepts any number of concurrent
//! connections, and feeds every line through the same parse/validate
//! path as the stdin reader — always with the drop-oldest overload
//! policy (a live daemon must never stall its clients on backpressure;
//! it sheds load and counts the shed). A `{"control":"shutdown"}` line
//! on *any* connection stops the accept loop, closes the queue, and the
//! daemon drains and checkpoints as usual.
//!
//! # Deterministic cross-client order
//!
//! Event order across concurrent connections is arrival order, which is
//! inherently racy. To make a live run *auditable*, every accepted
//! connection is assigned a monotone connection id and each of its
//! lines a per-connection sequence number. When a journal path is
//! given, every line is rewritten as
//! `{"conn":C,"seq":S,...original fields...}` and appended to the
//! journal *in the exact order the daemon consumed it* — the journal
//! lock is held across both the journal write and the queue push, so
//! journal order is queue order. Replaying the journal through
//! [`crate::Daemon::run_reader`] (or the sharded
//! [`crate::Router`](crate::router::Router)) reproduces the live run
//! bit-for-bit: the event parser ignores the `conn`/`seq` fields, so
//! the journal parses exactly like the original stream.
//!
//! A `{"control":"status"}` line is answered out of band: the daemon
//! writes one JSON status line back on the same connection without
//! queuing anything. Interactive `{"control":"whatif","budget":B}` and
//! `{"control":"tenant","table_group":T,"budget":B}` lines are answered
//! *in* band — queued as barrier items so the reply reflects exactly
//! the events that preceded the query on the stream — from the live
//! [`crate::Arbiter`], never by re-running selection.
//!
//! [`run_socket_router`] is the sharded peer: connections feed one
//! ordered line channel the [`Router`] consumes, with identical journal
//! and reply semantics plus per-group `tenant` answers.

use crate::arbiter::{Arbiter, InteractiveRegistry, PendingQuery};
use crate::daemon::{ingest_one, Daemon, Ingest, OverloadPolicy, ServiceReport, WorkItem};
use crate::event::{parse_line, Control, InputLine};
use crate::frame::WireItem;
use crate::journal::{render_item_line, JournalConfig, JournalWriter};
use crate::process::Supervisor;
use crate::queue::BoundedQueue;
use crate::records::{DecodeDict, Record, RecordIter};
use crate::router::Router;
use crate::status::{take_status_signal, StatusBoard};
use isel_core::{Trace, TraceSink};
use isel_workload::Schema;
use std::io::{BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Accept-loop poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Shared state handed to every connection handler.
struct ConnCtx<'a> {
    schema: &'a Schema,
    queue: &'a BoundedQueue<WorkItem>,
    stop: &'a AtomicBool,
    board: &'a StatusBoard,
    journal: Option<&'a Mutex<JournalWriter>>,
    base_dropped: u64,
    arbiter: &'a Arbiter,
}

/// Serve `daemon` on a Unix-domain socket at `path` until a `shutdown`
/// control arrives, then drain, checkpoint and report. A stale socket
/// file at `path` is replaced.
///
/// When `journal` is given, every accepted event is appended there
/// tagged with its connection id and per-connection sequence number, in
/// consumption order (see the module docs for the replay contract). The
/// journal may be JSONL or binary and may rotate into segments — see
/// [`JournalConfig`]; both encodings replay identically.
///
/// Clients may likewise send either encoding (even mixed on one
/// connection): binary items are rendered back to their canonical line
/// form and fed through the same ingest path, so journaling and replay
/// semantics are identical no matter how an event arrived.
///
/// Connection handlers read until their peer disconnects, so the final
/// drain completes once every client has hung up — clients should close
/// their end after (or instead of) sending `shutdown`.
pub fn run_socket(
    daemon: &mut Daemon,
    path: &Path,
    checkpoint: Option<&Path>,
    journal: Option<&JournalConfig>,
    trace: Trace<'_>,
) -> Result<ServiceReport, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let journal = match journal {
        Some(cfg) => Some(Mutex::new(JournalWriter::create(cfg.clone())?)),
        None => None,
    };
    let queue = BoundedQueue::new(daemon.config().queue_capacity);
    let board = daemon.status_board();
    let stop = AtomicBool::new(false);
    let schema = daemon.schema().clone();
    let base_dropped = daemon.base_dropped();
    let arbiter = daemon.arbiter_handle();
    let ctx = ConnCtx {
        schema: &schema,
        queue: &queue,
        stop: &stop,
        board: &board,
        journal: journal.as_ref(),
        base_dropped,
        arbiter: &arbiter,
    };

    let result = std::thread::scope(|s| {
        let ctx_ref = &ctx;
        s.spawn(move || {
            let conn_ids = AtomicU64::new(0);
            while !ctx_ref.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
                        s.spawn(move || serve_connection(ctx_ref, stream, conn));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if take_status_signal() {
                            eprintln!(
                                "{}",
                                ctx_ref.board.line(
                                    ctx_ref.base_dropped + ctx_ref.queue.dropped(),
                                    &[ctx_ref.queue.len() as u64],
                                    &ctx_ref.arbiter.allocations(),
                                )
                            );
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            ctx_ref.queue.close();
        });
        daemon.consume(&queue, &board, checkpoint, trace)
    });
    if let Some(j) = journal {
        let writer = match j.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        let errors = writer.finish();
        if errors > 0 {
            return Err(format!("journal write errors: {errors}"));
        }
    }
    std::fs::remove_file(path).ok();
    let (outcomes, written) = result?;
    Ok(daemon.report(outcomes, &queue, &board, written))
}

/// Per-connection reader: ingest records with the drop-oldest policy
/// until the peer disconnects or a shutdown control arrives. `conn` is
/// the monotone connection id used for journal tagging.
///
/// Records may be JSONL lines or binary frames (auto-detected per record
/// by the magic byte). Binary items are rendered to their canonical line
/// form through a per-connection template dictionary, then flow through
/// the exact same journal/ingest path as lines — so the journal is
/// encoding-agnostic and replay matches live behaviour either way.
fn serve_connection(ctx: &ConnCtx<'_>, stream: UnixStream, conn: u64) {
    let mut writer = stream.try_clone().ok();
    let mut dict = DecodeDict::new();
    let mut seq = 0u64;
    for record in RecordIter::new(BufReader::new(stream)) {
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        let line = match record {
            Record::Line(line) => line,
            Record::Item(item) => {
                if let WireItem::Define { .. } = item {
                    // Defines only update the connection's dictionary;
                    // events re-render as self-contained lines, so the
                    // journal stays definition-free.
                    render_item_line(&mut dict, &item);
                    continue;
                }
                match render_item_line(&mut dict, &item) {
                    Some(line) => line,
                    None => {
                        // Undecodable item (e.g. unknown template id):
                        // counted invalid exactly like a bad line.
                        ctx.board.invalid.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            Record::Corrupt => {
                ctx.board.invalid.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        seq += 1;
        let mut pending = None;
        let verdict = {
            // Hold the lock across journal-write AND queue-push so the
            // journal records the exact order events entered the queue —
            // including the barrier position of interactive queries,
            // which a replay must answer after the same events.
            let mut guard = ctx.journal.map(|j| match j.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            });
            if let Some(g) = guard.as_mut() {
                g.write_line(conn, seq, &line);
            }
            let verdict =
                ingest_one(&line, ctx.schema, ctx.queue, OverloadPolicy::DropOldest, ctx.board);
            if let Ingest::Interactive(c) = &verdict {
                // Interactive items are never shed — a dropped question
                // is a hung client — so they block instead.
                let (tx, rx) = std::sync::mpsc::channel();
                let _ = ctx
                    .queue
                    .push_blocking(WorkItem::Interactive(PendingQuery::new(*c, 1, Some(tx))));
                pending = Some(rx);
            }
            verdict
        };
        match verdict {
            Ingest::Continue => {}
            Ingest::Status => {
                // A peer that hung up mid-reply is counted, never fatal:
                // the next read sees the disconnect and ends the handler.
                let sent = writer.as_mut().is_some_and(|w| {
                    writeln!(
                        w,
                        "{}",
                        ctx.board.line(
                            ctx.base_dropped + ctx.queue.dropped(),
                            &[ctx.queue.len() as u64],
                            &ctx.arbiter.allocations(),
                        )
                    )
                    .is_ok()
                });
                if !sent {
                    ctx.board.reply_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ingest::Interactive(_) => {
                // Block this connection until the consumer reaches the
                // barrier; a query outliving the run goes unanswered
                // (the sender is dropped with the queue) and is skipped.
                if let Some(rx) = pending {
                    if let Ok(reply) = rx.recv() {
                        let sent = writer
                            .as_mut()
                            .is_some_and(|w| writeln!(w, "{reply}").is_ok());
                        if !sent {
                            // The client asked and left: count it, keep
                            // serving (the daemon's answer already
                            // reflects the stream — nothing to undo).
                            ctx.board.reply_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Ingest::Shutdown => {
                // Shutdown control: stop accepting and let the daemon drain.
                ctx.stop.store(true, Ordering::Relaxed);
                ctx.queue.close();
                break;
            }
        }
    }
}

/// A line channel presented as [`std::io::BufRead`] input for
/// [`Router::run_reader`]: connection handlers send canonical lines in
/// arrival order, and the channel hanging up reads as EOF.
struct ChannelReader {
    rx: std::sync::mpsc::Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl std::io::Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = std::io::BufRead::fill_buf(self)?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        std::io::BufRead::consume(self, n);
        Ok(n)
    }
}

impl std::io::BufRead for ChannelReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf.clear();
                    self.buf.extend_from_slice(line.as_bytes());
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                // Every sender hung up: the stream is over.
                Err(_) => return Ok(&[]),
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// Serve the sharded [`Router`] on a Unix-domain socket at `path` until
/// a `shutdown` control arrives, then drain every shard, commit a final
/// checkpoint generation and report — the sharded peer of
/// [`run_socket`].
///
/// Connections feed a single ordered line channel the router reads as
/// its input stream (journal semantics are identical to the unsharded
/// path: when `journal` is given, every line is tagged with its
/// connection/sequence ids in consumption order). Interactive `whatif`,
/// `tenant`, `calibration` and `status` lines are stamped with a
/// reply-routing token
/// ([`InteractiveRegistry`]); the answer — computed from the live
/// [`crate::Arbiter`] after every event that preceded the query, never
/// by re-running selection — is written back on the issuing connection
/// as one JSON line. `sinks` carries one trace sink per shard, as in
/// [`Router::run_reader`].
pub fn run_socket_router(
    router: &mut Router,
    path: &Path,
    checkpoint: Option<&Path>,
    journal: Option<&JournalConfig>,
    sinks: &[&dyn TraceSink],
) -> Result<ServiceReport, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let journal = match journal {
        Some(cfg) => Some(Mutex::new(JournalWriter::create(cfg.clone())?)),
        None => None,
    };
    let registry = Arc::new(InteractiveRegistry::new());
    router.set_interactive(Arc::clone(&registry));
    let schema = router.schema().clone();
    let stop = AtomicBool::new(false);
    let reply_errors = AtomicU64::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let conn_shared = ConnShared {
        schema: &schema,
        registry: &registry,
        journal: journal.as_ref(),
        stop: &stop,
        reply_errors: &reply_errors,
    };

    let result = std::thread::scope(|s| {
        let stop_ref = &stop;
        let shared_ref = &conn_shared;
        s.spawn(move || {
            let conn_ids = AtomicU64::new(0);
            while !stop_ref.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
                        let tx = tx.clone();
                        s.spawn(move || {
                            serve_router_connection(shared_ref, &tx, stream, conn);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            // Dropping the accept loop's sender lets the router read EOF
            // once every connection handler has also hung up.
        });
        let reader = ChannelReader { rx, buf: Vec::new(), pos: 0 };
        let result =
            router.run_reader(reader, OverloadPolicy::DropOldest, checkpoint, sinks);
        stop.store(true, Ordering::Relaxed);
        // Queries still in flight were either answered during the drain
        // or never reached the router; wake any connection waiting on
        // the latter.
        registry.drain();
        result
    });
    if let Some(j) = journal {
        let writer = match j.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        let errors = writer.finish();
        if errors > 0 {
            return Err(format!("journal write errors: {errors}"));
        }
    }
    std::fs::remove_file(path).ok();
    let dropped_replies = reply_errors.load(Ordering::Relaxed);
    if dropped_replies > 0 {
        eprintln!("{dropped_replies} interactive replies lost to disconnected clients");
    }
    result
}

/// Serve the multi-process [`Supervisor`] on a Unix-domain socket at
/// `path` until a `shutdown` control arrives — the process-topology
/// peer of [`run_socket_router`], with identical connection, journal
/// and interactive-reply semantics. The supervisor routes every line to
/// its worker processes, and `sink` receives the supervisor-side trace
/// (arbiter merges and failovers).
pub fn run_socket_supervisor(
    supervisor: &mut Supervisor,
    path: &Path,
    checkpoint: Option<&Path>,
    journal: Option<&JournalConfig>,
    sink: Option<&dyn TraceSink>,
) -> Result<ServiceReport, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let journal = match journal {
        Some(cfg) => Some(Mutex::new(JournalWriter::create(cfg.clone())?)),
        None => None,
    };
    let registry = Arc::new(InteractiveRegistry::new());
    supervisor.set_interactive(Arc::clone(&registry));
    let schema = supervisor.schema().clone();
    let stop = AtomicBool::new(false);
    let reply_errors = AtomicU64::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let conn_shared = ConnShared {
        schema: &schema,
        registry: &registry,
        journal: journal.as_ref(),
        stop: &stop,
        reply_errors: &reply_errors,
    };

    let result = std::thread::scope(|s| {
        let stop_ref = &stop;
        let shared_ref = &conn_shared;
        s.spawn(move || {
            let conn_ids = AtomicU64::new(0);
            while !stop_ref.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
                        let tx = tx.clone();
                        s.spawn(move || {
                            serve_router_connection(shared_ref, &tx, stream, conn);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        });
        let reader = ChannelReader { rx, buf: Vec::new(), pos: 0 };
        let result = supervisor.run_reader(reader, checkpoint, sink);
        stop.store(true, Ordering::Relaxed);
        registry.drain();
        result
    });
    if let Some(j) = journal {
        let writer = match j.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        let errors = writer.finish();
        if errors > 0 {
            return Err(format!("journal write errors: {errors}"));
        }
    }
    std::fs::remove_file(path).ok();
    let dropped_replies = reply_errors.load(Ordering::Relaxed);
    if dropped_replies > 0 {
        eprintln!("{dropped_replies} interactive replies lost to disconnected clients");
    }
    result
}

/// Context the accept loop shares with every connection handler.
#[derive(Clone, Copy)]
struct ConnShared<'a> {
    schema: &'a Schema,
    registry: &'a InteractiveRegistry,
    journal: Option<&'a Mutex<JournalWriter>>,
    stop: &'a AtomicBool,
    reply_errors: &'a AtomicU64,
}

/// Per-connection reader for the sharded socket: render records to
/// canonical lines, journal + forward them in one locked step (so
/// journal order is the router's consumption order), stamp interactive
/// lines with a reply token and relay the answer back.
fn serve_router_connection(
    shared: &ConnShared<'_>,
    tx: &std::sync::mpsc::Sender<String>,
    stream: UnixStream,
    conn: u64,
) {
    let ConnShared { schema, registry, journal, stop, reply_errors } = *shared;
    let mut writer = stream.try_clone().ok();
    let mut dict = DecodeDict::new();
    let mut seq = 0u64;
    for record in RecordIter::new(BufReader::new(stream)) {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let line = match record {
            Record::Line(line) => line,
            Record::Item(item) => {
                if let WireItem::Define { .. } = item {
                    render_item_line(&mut dict, &item);
                    continue;
                }
                match render_item_line(&mut dict, &item) {
                    Some(line) => line,
                    // Forwarded as a line the parser rejects, so live
                    // and journal-replay invalid counts agree.
                    None => "{\"invalid\":\"undecodable binary item\"}".to_owned(),
                }
            }
            Record::Corrupt => "{\"invalid\":\"corrupt record\"}".to_owned(),
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        seq += 1;
        let control = match parse_line(trimmed, schema) {
            Ok(InputLine::Control(c)) => Some(c),
            _ => None,
        };
        let interactive = matches!(
            control,
            Some(
                Control::Status
                    | Control::Whatif { .. }
                    | Control::Tenant { .. }
                    | Control::Budget { .. }
                    | Control::Calibration
            )
        );
        let mut pending = None;
        {
            // Journal-write and channel-send under one lock so journal
            // order is consumption order — the replay contract of the
            // unsharded socket path, unchanged.
            let mut guard = journal.map(|j| match j.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            });
            if let Some(g) = guard.as_mut() {
                g.write_line(conn, seq, &line);
            }
            if interactive {
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let token = registry.register(reply_tx);
                let body = &trimmed[..trimmed.len() - 1];
                let _ = tx.send(format!("{body},\"token\":{token}}}"));
                pending = Some(reply_rx);
            } else {
                let _ = tx.send(trimmed.to_owned());
            }
        }
        if let Some(reply_rx) = pending {
            if let Ok(reply) = reply_rx.recv() {
                // Count a peer that hung up mid-reply; never abort the
                // handler (the stream keeps draining until disconnect).
                let sent = writer
                    .as_mut()
                    .is_some_and(|w| writeln!(w, "{reply}").is_ok());
                if !sent {
                    reply_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if matches!(control, Some(Control::Shutdown)) {
            stop.store(true, Ordering::Relaxed);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DriftThresholds, ServiceConfig};
    use isel_workload::synthetic::{self, SyntheticConfig};
    use std::io::Read;

    fn test_setup() -> (isel_workload::Workload, ServiceConfig, std::path::PathBuf) {
        let w = synthetic::generate(&SyntheticConfig {
            tables: 1,
            attrs_per_table: 8,
            queries_per_table: 10,
            rows_base: 20_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 44,
        });
        let cfg = ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let dir = std::env::temp_dir().join("isel-service-socket-test");
        std::fs::create_dir_all(&dir).unwrap();
        (w, cfg, dir)
    }

    fn event_lines(w: &isel_workload::Workload, n: usize) -> Vec<String> {
        w.queries()[..n]
            .iter()
            .map(|q| {
                let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
                format!("{{\"table\":{},\"attrs\":[{}]}}", q.table().0, attrs.join(","))
            })
            .collect()
    }

    #[test]
    fn socket_round_trip_with_shutdown() {
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-{}.sock", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                // Wait for the listener to come up, then stream events.
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            run_socket(&mut daemon, &sock, None, None, Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 8);
        assert_eq!(report.epochs.len(), 1, "8 events seal one epoch");
        assert!(!report.final_selection.is_empty());
        assert!(!sock.exists(), "socket file cleaned up");
    }

    #[test]
    fn whatif_queries_are_answered_on_the_connection() {
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-whatif-{}.sock", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let events = event_lines(&w, 8);
        let probe = 1u64 << 20;

        let (report, reply) = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            let client = s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                // The whatif barrier is answered only after the 8 events
                // before it sealed and tuned an epoch.
                writeln!(stream, "{{\"control\":\"whatif\",\"budget\":{probe}}}").unwrap();
                let mut reply = Vec::new();
                let mut byte = [0u8; 1];
                loop {
                    stream.read_exact(&mut byte).unwrap();
                    if byte[0] == b'\n' {
                        break;
                    }
                    reply.push(byte[0]);
                }
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
                String::from_utf8(reply).unwrap()
            });
            let report = run_socket(&mut daemon, &sock, None, None, Trace::disabled()).unwrap();
            (report, client.join().unwrap())
        });
        assert_eq!(report.ingested, 8);
        assert_eq!(report.epochs.len(), 1);
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("budget").and_then(|b| b.as_u64()), Some(probe));
        assert!(v.get("total_memory").and_then(|m| m.as_u64()).unwrap() <= probe);
        // Served answer is byte-identical to an offline read of the same
        // maintained state.
        assert_eq!(reply, daemon.arbiter_handle().whatif(probe));
    }

    #[test]
    fn sharded_socket_answers_whatif_and_tenant_queries() {
        let w = synthetic::generate(&SyntheticConfig {
            tables: 3,
            attrs_per_table: 8,
            queries_per_table: 10,
            rows_base: 20_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 44,
        });
        let cfg = ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            shards: 2,
            ..ServiceConfig::default()
        };
        let dir = std::env::temp_dir().join("isel-service-socket-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join(format!("isel-router-{}.sock", std::process::id()));
        let mut router = Router::new(w.schema().clone(), cfg).unwrap();
        // 16 events over table 0's templates: two sealed epochs for
        // group 0 before the queries arrive.
        let events: Vec<String> = w
            .queries()
            .iter()
            .filter(|q| q.table().0 == 0)
            .cycle()
            .take(16)
            .map(|q| {
                let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
                format!("{{\"table\":{},\"attrs\":[{}]}}", q.table().0, attrs.join(","))
            })
            .collect();
        let probe = 1u64 << 22;

        let (report, replies) = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            let client = s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                writeln!(stream, "{{\"control\":\"whatif\",\"budget\":{probe}}}").unwrap();
                writeln!(stream, "{{\"control\":\"tenant\",\"table_group\":0,\"budget\":{probe}}}")
                    .unwrap();
                let mut replies = Vec::new();
                let mut byte = [0u8; 1];
                for _ in 0..2 {
                    let mut reply = Vec::new();
                    loop {
                        stream.read_exact(&mut byte).unwrap();
                        if byte[0] == b'\n' {
                            break;
                        }
                        reply.push(byte[0]);
                    }
                    replies.push(String::from_utf8(reply).unwrap());
                }
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
                replies
            });
            let report =
                run_socket_router(&mut router, &sock, None, None, &[]).unwrap();
            (report, client.join().unwrap())
        });
        assert_eq!(report.ingested, 16);
        // The served answers are byte-identical to offline reads of the
        // same maintained state.
        assert_eq!(replies[0], router.arbiter().whatif(probe));
        assert_eq!(replies[1], router.arbiter().tenant(0, probe));
        let v: serde_json::Value = serde_json::from_str(&replies[0]).unwrap();
        assert!(v.get("total_memory").and_then(|m| m.as_u64()).unwrap() <= probe);
        let v: serde_json::Value = serde_json::from_str(&replies[1]).unwrap();
        assert_eq!(v.get("table_group").and_then(|t| t.as_u64()), Some(0));
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some(), "published group has a cost");
    }

    /// Poll `{"control":"status"}` on `stream` until the reply shows at
    /// least `n` ingested events. Controls sent on this connection
    /// afterwards are then ordered after those events — connections are
    /// served concurrently, so a `shutdown` would otherwise race
    /// another connection's unread tail.
    fn await_ingested(stream: &mut UnixStream, n: u64) {
        use std::io::Read;
        loop {
            stream.write_all(b"{\"control\":\"status\"}\n").unwrap();
            let mut reply = Vec::new();
            let mut byte = [0u8; 1];
            loop {
                stream.read_exact(&mut byte).unwrap();
                if byte[0] == b'\n' {
                    break;
                }
                reply.push(byte[0]);
            }
            let reply = String::from_utf8(reply).unwrap();
            let got: u64 = reply
                .split("\"ingested\":")
                .nth(1)
                .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
                .expect("status reply carries an ingested counter")
                .parse()
                .unwrap();
            if got >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn disconnect_mid_query_does_not_abort_serving() {
        // Regression: a client that asks `whatif` and hangs up before
        // reading the reply used to risk tearing down the serving loop;
        // the failed reply write must be absorbed (and counted) while
        // other connections keep being served.
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-gone-{}.sock", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                // Ask, then vanish without reading the answer.
                writeln!(stream, "{{\"control\":\"whatif\",\"budget\":1048576}}").unwrap();
                stream.shutdown(std::net::Shutdown::Both).unwrap();
                drop(stream);
                // A second client is still served and can end the run —
                // once everything above has actually been ingested.
                let mut stream = UnixStream::connect(&sock_path).unwrap();
                writeln!(stream, "{}", events[0]).unwrap();
                await_ingested(&mut stream, 9);
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            run_socket(&mut daemon, &sock, None, None, Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 9, "both connections fully served");
    }

    #[test]
    fn router_survives_disconnect_mid_query() {
        let (w, cfg, dir) = test_setup();
        let cfg = ServiceConfig { shards: 2, ..cfg };
        let sock = dir.join(format!("isel-router-gone-{}.sock", std::process::id()));
        let mut router = Router::new(w.schema().clone(), cfg).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                writeln!(stream, "{{\"control\":\"whatif\",\"budget\":1048576}}").unwrap();
                stream.shutdown(std::net::Shutdown::Both).unwrap();
                drop(stream);
                let mut stream = UnixStream::connect(&sock_path).unwrap();
                writeln!(stream, "{}", events[0]).unwrap();
                await_ingested(&mut stream, 9);
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            run_socket_router(&mut router, &sock, None, None, &[]).unwrap()
        });
        assert_eq!(report.ingested, 9, "both connections fully served");
    }

    #[test]
    fn journal_records_arrival_order_and_status_replies() {
        let (w, cfg, dir) = test_setup();
        let sock = dir.join(format!("isel-journal-{}.sock", std::process::id()));
        let journal = dir.join(format!("isel-journal-{}.jsonl", std::process::id()));
        let mut daemon = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
        let events = event_lines(&w, 8);

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            let events = &events;
            s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in events {
                    writeln!(stream, "{e}").unwrap();
                }
                stream.write_all(b"{\"control\":\"status\"}\n").unwrap();
                // The status reply comes back on this connection as one
                // JSON line before anything else is written to it.
                let mut reply = Vec::new();
                let mut byte = [0u8; 1];
                loop {
                    stream.read_exact(&mut byte).unwrap();
                    if byte[0] == b'\n' {
                        break;
                    }
                    reply.push(byte[0]);
                }
                let reply = String::from_utf8(reply).unwrap();
                assert!(reply.contains("\"ingested\":8"), "status reply: {reply}");
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            let jcfg = JournalConfig {
                path: journal.clone(),
                format: crate::journal::WireFormat::Jsonl,
                max_bytes: None,
            };
            run_socket(&mut daemon, &sock, None, Some(&jcfg), Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 8);

        // Journal lines carry conn/seq tags in increasing per-connection
        // order, and the control lines are journaled too.
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10, "8 events + status + shutdown journaled");
        let mut last_seq = 0u64;
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert_eq!(v.get("conn").and_then(|c| c.as_u64()), Some(1));
            let seq = v.get("seq").and_then(|s| s.as_u64()).unwrap();
            assert!(seq > last_seq, "sequence numbers strictly increase");
            last_seq = seq;
        }

        // Replaying the journal through the deterministic reader
        // reproduces the live outcome: RawLine ignores conn/seq.
        let mut replay = Daemon::new(w.schema().clone(), cfg).unwrap();
        let rep = replay
            .run_reader(
                std::io::Cursor::new(text),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(rep.ingested, report.ingested);
        assert_eq!(rep.epochs.len(), report.epochs.len());
        assert_eq!(
            rep.final_selection.indexes(),
            report.final_selection.indexes()
        );
        std::fs::remove_file(&journal).ok();
    }
}
