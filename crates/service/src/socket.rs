//! Unix-domain-socket ingestion for live serving.
//!
//! [`run_socket`] binds a socket, accepts any number of concurrent
//! connections, and feeds every line through the same parse/validate
//! path as the stdin reader — always with the drop-oldest overload
//! policy (a live daemon must never stall its clients on backpressure;
//! it sheds load and counts the shed). A `{"control":"shutdown"}` line
//! on *any* connection stops the accept loop, closes the queue, and the
//! daemon drains and checkpoints as usual.
//!
//! Event order across concurrent connections is arrival order, which is
//! inherently racy — deterministic replay is the job of
//! [`crate::Daemon::run_reader`] over a recorded log, not of the live
//! socket path.

use crate::daemon::{ingest_one, Daemon, OverloadPolicy, ServiceReport, WorkItem};
use crate::queue::BoundedQueue;
use isel_core::Trace;
use std::io::{BufRead, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Accept-loop poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serve `daemon` on a Unix-domain socket at `path` until a `shutdown`
/// control arrives, then drain, checkpoint and report. A stale socket
/// file at `path` is replaced.
///
/// Connection handlers read until their peer disconnects, so the final
/// drain completes once every client has hung up — clients should close
/// their end after (or instead of) sending `shutdown`.
pub fn run_socket(
    daemon: &mut Daemon,
    path: &Path,
    checkpoint: Option<&Path>,
    trace: Trace<'_>,
) -> Result<ServiceReport, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let queue = BoundedQueue::new(daemon.config().queue_capacity);
    let ingested = AtomicU64::new(0);
    let invalid = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let schema = daemon.schema().clone();

    let result = std::thread::scope(|s| {
        let queue_ref = &queue;
        let stop_ref = &stop;
        let schema_ref = &schema;
        let ingested_ref = &ingested;
        let invalid_ref = &invalid;
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        s.spawn(move || {
                            serve_connection(
                                stream, schema_ref, queue_ref, stop_ref, ingested_ref,
                                invalid_ref,
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            queue_ref.close();
        });
        daemon.consume(&queue, &ingested, &invalid, checkpoint, trace)
    });
    std::fs::remove_file(path).ok();
    let (outcomes, written) = result?;
    Ok(daemon.report(outcomes, &queue, &ingested, &invalid, written))
}

/// Per-connection reader: ingest lines with the drop-oldest policy until
/// the peer disconnects or a shutdown control arrives.
fn serve_connection(
    stream: UnixStream,
    schema: &isel_workload::Schema,
    queue: &BoundedQueue<WorkItem>,
    stop: &AtomicBool,
    ingested: &AtomicU64,
    invalid: &AtomicU64,
) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if !ingest_one(&line, schema, queue, OverloadPolicy::DropOldest, ingested, invalid) {
            // Shutdown control: stop accepting and let the daemon drain.
            stop.store(true, Ordering::Relaxed);
            queue.close();
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DriftThresholds, ServiceConfig};
    use isel_workload::synthetic::{self, SyntheticConfig};
    use std::io::Write;

    #[test]
    fn socket_round_trip_with_shutdown() {
        let w = synthetic::generate(&SyntheticConfig {
            tables: 1,
            attrs_per_table: 8,
            queries_per_table: 10,
            rows_base: 20_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 44,
        });
        let cfg = ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            max_templates: 32,
            drift: DriftThresholds::always_adapt(),
            ..ServiceConfig::default()
        };
        let dir = std::env::temp_dir().join("isel-service-socket-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join(format!("isel-{}.sock", std::process::id()));

        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let events: Vec<String> = w.queries()[..8]
            .iter()
            .map(|q| {
                let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
                format!("{{\"table\":{},\"attrs\":[{}]}}", q.table().0, attrs.join(","))
            })
            .collect();

        let report = std::thread::scope(|s| {
            let sock_path = sock.clone();
            s.spawn(move || {
                // Wait for the listener to come up, then stream events.
                let mut stream = loop {
                    match UnixStream::connect(&sock_path) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                for e in &events {
                    writeln!(stream, "{e}").unwrap();
                }
                stream.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
            });
            run_socket(&mut daemon, &sock, None, Trace::disabled()).unwrap()
        });
        assert_eq!(report.ingested, 8);
        assert_eq!(report.epochs.len(), 1, "8 events seal one epoch");
        assert!(!report.final_selection.is_empty());
        assert!(!sock.exists(), "socket file cleaned up");
    }
}
