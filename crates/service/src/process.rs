//! Multi-process serving: a router/supervisor process fronting `N`
//! worker child processes, failure-invariant by construction.
//!
//! ## Topology
//!
//! The **supervisor** owns everything shared: the input (stdin or the
//! listening socket), the journal, the [`Arbiter`] and its maintained
//! global-budget merge, the checkpoint `Committer`, the
//! [`StatusBoard`] and the trace sink. Each **worker** is a child
//! process (`isel worker`, spawned from the supervisor's own
//! executable) hosting one or more *shards* — the same per-table-group
//! tuning state a [`crate::router::Router`] shard thread holds, behind
//! the same `GroupState` type.
//!
//! The wire between them is the binary frame protocol of
//! [`crate::frame`]: the supervisor writes frames onto each worker's
//! stdin pipe, carrying either a [`SupMsg`] (JSON inside a
//! [`WireItem::Sup`] item) or one event line (a [`WireItem::Raw`]
//! item); the worker answers with [`WorkerMsg`] JSON lines on stdout.
//! Events always travel as **canonical JSONL lines** — binary input is
//! re-rendered by the supervisor through its template dictionary
//! ([`render_query`]) — so a worker's stream is self-contained: no
//! dictionary state spans the pipe, which is what makes a journal tail
//! replayable to a *different* worker after a crash.
//!
//! ## Liveness and failover
//!
//! The supervisor keeps a per-shard **tail**: every line routed to a
//! shard since the last committed checkpoint generation (appended
//! *before* the pipe write, so a line lost in a dying worker's pipe
//! buffer is always still in the tail). Worker death is observed as
//! EOF on the worker's stdout (the collector thread drains every
//! buffered message first — ordering matters for arbiter publishes),
//! prompted by `SIGCHLD` ([`crate::status::install_child_signal`]) or
//! an `EPIPE` on the stdin pipe. Failover then, per dead shard:
//!
//! 1. restores the shard onto a survivor (or a respawned replacement,
//!    under [`ServiceConfig::respawn`]) from the last *committed*
//!    `manifest.shard-{k}.g{g}.json` checkpoint, whose contents ride
//!    inside the [`SupMsg::Adopt`] itself;
//! 2. replays the shard's journal tail — checkpoint barriers inside
//!    the tail are re-sent **scoped to that shard only**, so an
//!    adopter's other shards never re-checkpoint at advanced state;
//! 3. emits one [`TraceEvent::Failover`] and bumps the board's
//!    `failovers` (and `restarts`, when a replacement was spawned).
//!
//! ## Why selections are failure-invariant
//!
//! Group state is deterministic in the event prefix: a shard restored
//! from generation `g` and fed the tail since `g` reaches exactly the
//! state the dead worker had, then continues identically. Re-reported
//! epoch outcomes are bit-identical, so the supervisor deduplicates
//! them by `(table, epoch)`; re-published frontiers fold into the
//! arbiter idempotently (clean republish is skipped, and the tail
//! replay always ends at the same last-published frontier per table).
//! The final merged selection depends only on those last publications
//! and the global budget — hence byte-identical with and without a
//! `SIGKILL` at *any* event position, the invariant pinned by the CLI
//! failover tests.

use crate::arbiter::{global_budget, Arbiter, InteractiveRegistry, PublishedFrontier};
use crate::checkpoint::{
    shard_file, GroupCheckpoint, Manifest, ShardCheckpoint, CHECKPOINT_VERSION,
};
use crate::config::ServiceConfig;
use crate::daemon::ServiceReport;
use crate::event::{parse_line, parse_token, Control, InputLine};
use crate::fault;
use crate::feedback::{self, CalSnapshot};
use crate::frame::{put_frame, put_item, render_query, WireItem, MAX_PAYLOAD};
use crate::records::{Record, RecordIter};
use crate::router::{Committer, GroupState};
use crate::shard::{classify_line, LineClass, ShardMap};
use crate::status::{take_child_signal, take_status_signal, StatusBoard};
use crate::tuner::EpochOutcome;
use isel_core::{Parallelism, Trace, TraceEvent, TraceSink};
use isel_workload::{Query, QueryKind, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervisor → worker messages, carried as [`WireItem::Sup`] frames on
/// the worker's stdin pipe (interleaved with [`WireItem::Raw`] event
/// lines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SupMsg {
    /// First message of every spawn: the schema and configuration the
    /// worker tunes under, plus the shards it initially hosts (each
    /// starts fresh; restores arrive as separate [`SupMsg::Adopt`]s).
    Hello {
        /// Workload schema (shared by every shard; boxed to keep the
        /// enum small — every other variant is a few words).
        schema: Box<Schema>,
        /// Service configuration (shared by every shard).
        config: Box<ServiceConfig>,
        /// Shards this worker hosts from the start.
        shards: Vec<u32>,
        /// Checkpoint manifest path, when checkpointing is on; shard
        /// files are derived from it exactly as the in-process router
        /// derives them ([`shard_file`]).
        manifest: Option<String>,
    },
    /// Switch the *current shard*: subsequent raw event lines ingest
    /// into this shard until the next `Shard` message.
    Shard {
        /// The shard now receiving raw lines.
        shard: u32,
    },
    /// Checkpoint barrier: serialize each targeted hosted shard as a
    /// [`ShardCheckpoint`] and report [`WorkerMsg::CheckpointDone`].
    Barrier {
        /// Barrier generation (monotonic, supervisor-assigned).
        generation: u64,
        /// Shards to checkpoint; `None` means every hosted shard. Tail
        /// replays scope this to the failed-over shard so an adopter's
        /// other shards never re-checkpoint at advanced state.
        shards: Option<Vec<u32>>,
    },
    /// In-band interactive-query barrier: acknowledge with
    /// [`WorkerMsg::Ack`] once every line queued before this point has
    /// been consumed. The supervisor answers from the arbiter when all
    /// live workers have acknowledged.
    Query {
        /// Query id matching the acknowledgement to the waiter.
        id: u64,
    },
    /// Host (or re-host) a shard: restore it from a shard checkpoint
    /// document, or create it fresh when no committed generation
    /// exists.
    Adopt {
        /// The shard to host.
        shard: u32,
        /// Serialized [`ShardCheckpoint`] to restore from (`None` =
        /// fresh). Contents, not a path: the supervisor snapshots the
        /// document under its committer lock, so the file GC that runs
        /// when later generations commit can never race the adoption.
        data: Option<String>,
    },
    /// Drain, report one [`WorkerMsg::Final`] per hosted shard, exit.
    Shutdown,
}

/// Worker → supervisor messages, one JSON object per stdout line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// The worker is up and parsed its [`SupMsg::Hello`].
    Ready,
    /// A sealed epoch was tuned. Carries the shard's cumulative
    /// absolute counters so the supervisor's status line stays fresh
    /// without extra round trips.
    Outcome {
        /// Shard the epoch sealed on.
        shard: u32,
        /// The tuning outcome (bit-identical on re-report after a
        /// failover replay; the supervisor deduplicates by
        /// `(table, epoch)`).
        outcome: EpochOutcome,
        /// Valid events ingested by this shard so far (absolute).
        ingested: u64,
        /// Invalid lines counted by this shard so far (absolute).
        invalid: u64,
        /// Dropped-event count carried by this shard (absolute; only
        /// non-zero when restored from a checkpoint that had drops).
        dropped: u64,
    },
    /// A group re-selected and published a new frontier for the
    /// supervisor's arbiter to fold into the global-budget merge.
    Publish {
        /// Table group that re-selected.
        table: u16,
        /// The published frontier (construction steps included).
        pf: PublishedFrontier,
    },
    /// One shard's checkpoint file for a barrier generation is on disk.
    CheckpointDone {
        /// Shard that wrote the file.
        shard: u32,
        /// Barrier generation the file belongs to.
        generation: u64,
        /// Path of the shard file (supervisor-side `Committer` input).
        file: String,
    },
    /// Acknowledge an in-band [`SupMsg::Query`] barrier.
    Ack {
        /// The acknowledged query id.
        id: u64,
        /// Cumulative `(shard, ingested, invalid, dropped)` counters
        /// for every hosted shard at the barrier point. Ingest counters
        /// otherwise refresh only when an epoch seals; riding them on
        /// the ack keeps the in-band contract — an interactive status
        /// reply reflects exactly the events that precede the query.
        counts: Vec<(u32, u64, u64, u64)>,
        /// Per-shard absolute calibration counter sums at the barrier
        /// point, summed over the shard's groups. Defaulted so streams
        /// recorded before the feedback subsystem still parse.
        #[serde(default)]
        cal: Vec<(u32, CalSnapshot)>,
    },
    /// Final absolute counters for one hosted shard, sent at shutdown.
    Final {
        /// The shard reported on.
        shard: u32,
        /// Valid events ingested (absolute).
        ingested: u64,
        /// Invalid lines counted (absolute).
        invalid: u64,
        /// Dropped-event count carried (absolute).
        dropped: u64,
    },
    /// The worker hit an unrecoverable error (checkpoint I/O, restore
    /// failure) and is about to exit. The supervisor fails the whole
    /// run with this message instead of cycling a doomed shard through
    /// adopt → die failovers that can never succeed.
    Fatal {
        /// Human-readable cause, verbatim from the failing operation.
        message: String,
    },
}

/// Encode one [`SupMsg`] as a binary frame.
fn sup_frame(msg: &SupMsg) -> Result<Vec<u8>, String> {
    let json = serde_json::to_string(msg).map_err(|e| format!("serialize SupMsg: {e}"))?;
    let mut payload = Vec::new();
    put_item(&mut payload, &WireItem::Sup(json.into_bytes()));
    if payload.len() > MAX_PAYLOAD {
        return Err(format!(
            "supervisor message over the {MAX_PAYLOAD}-byte frame payload limit"
        ));
    }
    let mut frame = Vec::new();
    put_frame(&mut frame, &payload);
    Ok(frame)
}

/// Best-effort [`WorkerMsg::Fatal`] report, sent right before the
/// worker exits with an error. A dead supervisor pipe is ignored —
/// there is nobody left to tell.
fn send_fatal<W: Write>(out: &mut W, message: &str) {
    let msg = WorkerMsg::Fatal { message: message.to_owned() };
    if let Ok(json) = serde_json::to_string(&msg) {
        let _ = writeln!(out, "{json}").and_then(|()| out.flush());
    }
}

/// Encode one raw event line as a binary frame.
fn raw_frame(line: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    put_item(&mut payload, &WireItem::Raw(line.as_bytes().to_vec()));
    let mut frame = Vec::new();
    put_frame(&mut frame, &payload);
    frame
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// One hosted shard inside a worker process: its table groups plus the
/// shard's absolute lifetime counters (checkpoint-exact — they restore
/// from [`SupMsg::Adopt`] and serialize into every [`ShardCheckpoint`]).
struct ShardCtx {
    groups: BTreeMap<u16, GroupState>,
    ingested: u64,
    invalid: u64,
    dropped: u64,
}

impl ShardCtx {
    fn fresh() -> Self {
        Self { groups: BTreeMap::new(), ingested: 0, invalid: 0, dropped: 0 }
    }
}

/// The `isel worker` entrypoint: host shards over the stdin/stdout pipe
/// protocol until [`SupMsg::Shutdown`] or EOF. Never called directly by
/// users — the supervisor spawns it from its own executable.
///
/// Worker runs do not write their own trace files (the supervisor owns
/// the single trace, carrying [`TraceEvent::Merge`] and
/// [`TraceEvent::Failover`] events); per-run tuning traces remain an
/// in-process (`--shards`) feature.
///
/// # Errors
///
/// Returns protocol violations (first message not `Hello`, corrupt
/// frame) and checkpoint I/O failures. A failed stdout write means the
/// supervisor is gone; the worker exits quietly.
pub fn run_worker() -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_worker_io(stdin.lock(), stdout.lock())
}

/// [`run_worker`] over explicit streams, so unit tests can drive the
/// full protocol through in-memory buffers.
pub fn run_worker_io<R: BufRead, W: Write>(input: R, mut out: W) -> Result<(), String> {
    let mut records = RecordIter::new(input);

    // Protocol: the first record must be the Hello.
    let (schema, config, initial_shards, manifest) = match records.next() {
        Some(Record::Item(WireItem::Sup(json))) => {
            match std::str::from_utf8(&json)
                .map_err(|e| format!("{e}"))
                .and_then(|s| serde_json::from_str::<SupMsg>(s).map_err(|e| format!("{e}")))
            {
                Ok(SupMsg::Hello { schema, config, shards, manifest }) => {
                    (*schema, *config, shards, manifest.map(PathBuf::from))
                }
                Ok(other) => {
                    return Err(format!("worker protocol: expected Hello, got {other:?}"))
                }
                Err(e) => return Err(format!("worker protocol: bad Hello: {e}")),
            }
        }
        other => return Err(format!("worker protocol: expected Hello frame, got {other:?}")),
    };
    let par = match config.threads {
        0 => Parallelism::available(),
        n => Parallelism::new(n),
    };
    let mut ctxs: BTreeMap<u32, ShardCtx> =
        initial_shards.into_iter().map(|k| (k, ShardCtx::fresh())).collect();
    let mut current: Option<u32> = None;

    // A stdout write fails only when the supervisor died; exit quietly
    // (the replacement supervisor story is "restart the service"), and
    // signal the loop via `gone`.
    let mut gone = false;
    macro_rules! send {
        ($msg:expr) => {{
            let json = serde_json::to_string(&$msg)
                .map_err(|e| format!("serialize WorkerMsg: {e}"))?;
            if writeln!(out, "{json}").and_then(|()| out.flush()).is_err() {
                gone = true;
            }
        }};
    }
    send!(WorkerMsg::Ready);

    // Mirrors the in-process shard worker's ingest closure
    // (`router::shard_worker`): push into the group's window, tune on
    // sealed epochs, publish dirty frontiers — here over the pipe.
    let ingest = |q: &Query,
                  shard: u32,
                  ctx: &mut ShardCtx,
                  out: &mut W,
                  gone: &mut bool|
     -> Result<(), String> {
        ctx.ingested += 1;
        // Fresh workers count from 0, so the hit count equals the
        // shard's ingested count (the old KILL_AFTER contract). An
        // injected error exits the worker like a crash: no Fatal
        // report, so the supervisor fails the shard over.
        fault::fire(fault::WORKER_INGEST, shard)?;
        let table = q.table();
        let group = ctx
            .groups
            .entry(table.0)
            .or_insert_with(|| GroupState::fresh(&schema, &config, table));
        if group.window.push(q) {
            let snap = group
                .window
                .snapshot()
                .expect("snapshot exists after an epoch seals");
            let mut outcome = feedback::tune_group(
                &mut group.tuner,
                &mut group.window,
                &mut group.feedback,
                &snap,
                &schema,
                &config,
                par,
                Trace::disabled(),
                None,
            );
            outcome.shard = Some(shard);
            let msg = WorkerMsg::Outcome {
                shard,
                outcome,
                ingested: ctx.ingested,
                invalid: ctx.invalid,
                dropped: ctx.dropped,
            };
            let json =
                serde_json::to_string(&msg).map_err(|e| format!("serialize WorkerMsg: {e}"))?;
            if writeln!(out, "{json}").and_then(|()| out.flush()).is_err() {
                *gone = true;
            }
            if group.tuner.take_published_dirty() {
                if let Some(pf) = group.tuner.published() {
                    let msg = WorkerMsg::Publish { table: table.0, pf: (**pf).clone() };
                    let json = serde_json::to_string(&msg)
                        .map_err(|e| format!("serialize WorkerMsg: {e}"))?;
                    if writeln!(out, "{json}").and_then(|()| out.flush()).is_err() {
                        *gone = true;
                    }
                }
            }
        }
        Ok(())
    };

    for record in records {
        if gone {
            return Ok(());
        }
        match record {
            Record::Item(WireItem::Sup(json)) => {
                let msg: SupMsg = std::str::from_utf8(&json)
                    .map_err(|e| format!("worker protocol: bad SupMsg: {e}"))
                    .and_then(|s| {
                        serde_json::from_str(s)
                            .map_err(|e| format!("worker protocol: bad SupMsg: {e}"))
                    })?;
                match msg {
                    SupMsg::Hello { .. } => {
                        return Err("worker protocol: duplicate Hello".into())
                    }
                    SupMsg::Shard { shard } => current = Some(shard),
                    SupMsg::Query { id } => {
                        let counts = ctxs
                            .iter()
                            .map(|(k, c)| (*k, c.ingested, c.invalid, c.dropped))
                            .collect();
                        let cal = ctxs
                            .iter()
                            .map(|(k, c)| {
                                let mut sum = CalSnapshot::default();
                                for g in c.groups.values() {
                                    sum.add(&g.feedback.snapshot());
                                }
                                (*k, sum)
                            })
                            .collect();
                        send!(WorkerMsg::Ack { id, counts, cal });
                    }
                    SupMsg::Adopt { shard, data } => {
                        let restore = || -> Result<ShardCtx, String> {
                            let Some(text) = &data else { return Ok(ShardCtx::fresh()) };
                            let cp = ShardCheckpoint::from_json(text)?;
                            let mut ctx = ShardCtx {
                                groups: BTreeMap::new(),
                                ingested: cp.ingested,
                                invalid: cp.invalid,
                                dropped: cp.dropped,
                            };
                            for gc in &cp.groups {
                                ctx.groups.insert(
                                    gc.table,
                                    GroupState::from_checkpoint(gc, &schema, &config)?,
                                );
                            }
                            Ok(ctx)
                        };
                        let ctx = match restore() {
                            Ok(ctx) => ctx,
                            Err(e) => {
                                send_fatal(&mut out, &e);
                                return Err(e);
                            }
                        };
                        // Re-publish restored frontiers so the
                        // supervisor's arbiter reflects the adopted
                        // state (idempotent: a clean republish is
                        // skipped arbiter-side, and the tail replay
                        // converges to the same last publication per
                        // table).
                        for (t, g) in &ctx.groups {
                            if let Some(pf) = g.tuner.published() {
                                send!(WorkerMsg::Publish {
                                    table: *t,
                                    pf: (**pf).clone()
                                });
                            }
                        }
                        ctxs.insert(shard, ctx);
                    }
                    SupMsg::Barrier { generation, shards } => {
                        let targets: Vec<u32> = match shards {
                            Some(list) => list,
                            None => ctxs.keys().copied().collect(),
                        };
                        let Some(manifest) = &manifest else {
                            // No checkpoint path: barriers are no-ops,
                            // exactly like the in-process worker's.
                            continue;
                        };
                        for k in targets {
                            let Some(ctx) = ctxs.get_mut(&k) else { continue };
                            let cp = ShardCheckpoint {
                                version: CHECKPOINT_VERSION,
                                config: config.clone(),
                                shard: k,
                                generation,
                                ingested: ctx.ingested,
                                invalid: ctx.invalid,
                                dropped: ctx.dropped,
                                groups: ctx
                                    .groups
                                    .values_mut()
                                    .map(|g| {
                                        GroupCheckpoint::capture(&mut g.tuner, &g.window)
                                            .with_feedback(
                                                config
                                                    .calibration
                                                    .enabled
                                                    .then(|| g.feedback.save()),
                                            )
                                    })
                                    .collect(),
                            };
                            let file = shard_file(manifest, k, generation);
                            // A failed save (unwritable directory, full
                            // disk) would fail every adopter the same
                            // way — report it so the supervisor aborts
                            // instead of failing over in circles.
                            if let Err(e) = cp.save(&file) {
                                send_fatal(&mut out, &e);
                                return Err(e);
                            }
                            // The file is written but CheckpointDone is
                            // not sent — a kill here is a torn
                            // checkpoint attempt. Saves are sequential
                            // from generation 1 on an initially
                            // scheduled worker, so hit ≡ generation.
                            fault::fire(fault::WORKER_CHECKPOINT, k)?;
                            send!(WorkerMsg::CheckpointDone {
                                shard: k,
                                generation,
                                file: file.to_string_lossy().into_owned(),
                            });
                        }
                    }
                    SupMsg::Shutdown => break,
                }
            }
            Record::Item(WireItem::Raw(bytes)) => {
                let line = String::from_utf8_lossy(&bytes);
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let Some(shard) = current else {
                    // Protocol: a line before any Shard message has no
                    // home; the supervisor never does this.
                    continue;
                };
                let Some(ctx) = ctxs.get_mut(&shard) else { continue };
                match parse_line(trimmed, &schema) {
                    Ok(InputLine::Query(q)) => {
                        ingest(&q, shard, ctx, &mut out, &mut gone)?;
                    }
                    // Observed-cost probes feed the owning group's ratio
                    // tracker; they never count as ingested events.
                    Ok(InputLine::Observed(o)) => {
                        let table = o.query.table();
                        let group = ctx
                            .groups
                            .entry(table.0)
                            .or_insert_with(|| GroupState::fresh(&schema, &config, table));
                        group.feedback.observe(&config, &o, None, Trace::disabled());
                    }
                    // Mirror the in-process worker: a line that routed
                    // as a table line but parses as a control is
                    // dropped, never half-applied.
                    Ok(InputLine::Control(_)) => {}
                    Err(_) => ctx.invalid += 1,
                }
            }
            // The supervisor sends only Sup and Raw frames; anything
            // else is a protocol violation worth failing loudly on.
            other => return Err(format!("worker protocol: unexpected record {other:?}")),
        }
    }
    for (k, ctx) in &ctxs {
        send!(WorkerMsg::Final {
            shard: *k,
            ingested: ctx.ingested,
            invalid: ctx.invalid,
            dropped: ctx.dropped,
        });
    }
    let _ = gone;
    Ok(())
}

// ---------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------

/// One journal-tail entry of a shard: an event line, or a checkpoint
/// barrier at its exact stream position.
enum TailEntry {
    Line(String),
    Barrier(u64),
}

/// One persisted epoch outcome: the `(table, epoch)` dedupe key plus
/// the outcome the worker reported.
type OutcomeEntry = (u16, u64, EpochOutcome);

fn save_outcomes(path: &Path, entries: &Vec<OutcomeEntry>) -> Result<(), String> {
    let json = serde_json::to_string(entries).map_err(|e| e.to_string())?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, path).map_err(|e| e.to_string())
}

/// Load the outcome sidecar; a missing or unreadable file is an empty
/// history (a fresh state directory, or a crash before the first
/// commit edge).
fn load_outcomes(path: &Path) -> BTreeMap<(u16, u64), EpochOutcome> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(entries) = serde_json::from_str::<Vec<OutcomeEntry>>(&text) else {
        return BTreeMap::new();
    };
    entries.into_iter().map(|(t, e, o)| ((t, e), o)).collect()
}

/// Drop everything up to and including the barrier of `generation` —
/// that prefix is durable once the generation's manifest commits.
fn truncate_tail(tail: &mut VecDeque<TailEntry>, generation: u64) {
    if let Some(pos) = tail
        .iter()
        .position(|e| matches!(e, TailEntry::Barrier(g) if *g == generation))
    {
        tail.drain(..=pos);
    }
}

/// An interactive query waiting for every live worker to pass its
/// in-band barrier.
struct PendingInteractive {
    control: Control,
    waiting: std::collections::HashSet<usize>,
    reply: Option<Sender<String>>,
}

/// State shared between the supervisor's routing loop and the
/// per-worker collector threads.
struct Shared<'a> {
    /// Epoch outcomes keyed by `(table, epoch)` — the key under which a
    /// failover replay's re-reported (bit-identical) outcomes dedupe.
    outcomes: Mutex<BTreeMap<(u16, u64), EpochOutcome>>,
    /// Per-shard absolute counters `(ingested, invalid, dropped)` as
    /// last reported by the hosting worker.
    counts: Mutex<BTreeMap<u32, (u64, u64, u64)>>,
    /// Per-shard absolute calibration counter sums, as last reported on
    /// a worker ack.
    cal: Mutex<BTreeMap<u32, CalSnapshot>>,
    /// Outstanding interactive queries by id.
    pending: Mutex<HashMap<u64, PendingInteractive>>,
    /// Per-shard journal tails since the last committed generation.
    tails: Mutex<BTreeMap<u32, VecDeque<TailEntry>>>,
    /// First hard failure reported by a collector (checkpoint I/O).
    failure: Mutex<Option<String>>,
    board: &'a StatusBoard,
    committer: Option<&'a Committer<'a>>,
    arbiter: &'a Arbiter,
    sink: Option<&'a dyn TraceSink>,
    /// Restart sidecar paths under `--state-dir`: persisted status
    /// counters and the committed epoch-outcome history.
    status_path: Option<PathBuf>,
    outcomes_path: Option<PathBuf>,
}

impl Shared<'_> {
    fn set_counts(&self, shard: u32, ingested: u64, invalid: u64, dropped: u64) {
        let mut c = self.counts.lock().expect("counts lock poisoned");
        c.insert(shard, (ingested, invalid, dropped));
        let (i, v) = c
            .values()
            .fold((0u64, 0u64), |(i, v), &(ci, cv, _)| (i + ci, v + cv));
        self.board.ingested.store(i, Ordering::Relaxed);
        self.board.invalid.store(v, Ordering::Relaxed);
    }

    fn set_cal(&self, shard: u32, snap: CalSnapshot) {
        let mut cal = self.cal.lock().expect("cal lock poisoned");
        cal.insert(shard, snap);
        let mut total = CalSnapshot::default();
        for s in cal.values() {
            total.add(s);
        }
        self.board.cal.store(&total);
    }

    fn cal_total(&self) -> CalSnapshot {
        let cal = self.cal.lock().expect("cal lock poisoned");
        let mut total = CalSnapshot::default();
        for s in cal.values() {
            total.add(s);
        }
        total
    }

    fn dropped_total(&self) -> u64 {
        self.counts
            .lock()
            .expect("counts lock poisoned")
            .values()
            .map(|c| c.2)
            .sum()
    }

    fn fail(&self, e: String) {
        self.failure
            .lock()
            .expect("failure lock poisoned")
            .get_or_insert(e);
    }

    fn take_failure(&self) -> Option<String> {
        self.failure.lock().expect("failure lock poisoned").take()
    }

    /// Rewrite the restart sidecars (tmp + rename, best-effort). Called
    /// on every commit edge — the exact point journal replay resumes
    /// from — plus after each failover and at end of run, so a
    /// restarted supervisor reloads counters and epoch history at least
    /// as fresh as the checkpoint it restores.
    fn persist_sidecars(&self) {
        if let Some(p) = &self.status_path {
            let _ = crate::status::PersistedStatus::capture(self.board).save(p);
        }
        if let Some(p) = &self.outcomes_path {
            let snapshot: Vec<OutcomeEntry> = {
                let map = self.outcomes.lock().expect("outcomes lock poisoned");
                map.iter().map(|(&(t, e), o)| (t, e, o.clone())).collect()
            };
            let _ = save_outcomes(p, &snapshot);
        }
    }

    /// All live workers acked query `id`? Then answer — status from the
    /// board (the acks just refreshed its counters, so the reply covers
    /// exactly the events routed before the query), everything else
    /// from the arbiter.
    fn ack(&self, slot: usize, id: u64) {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let Some(p) = pending.get_mut(&id) else { return };
        p.waiting.remove(&slot);
        if !p.waiting.is_empty() {
            return;
        }
        let p = pending.remove(&id).expect("entry just seen");
        drop(pending);
        let answer = match p.control {
            Control::Status => {
                let shards = self.tails.lock().expect("tails lock poisoned").len();
                Some(self.board.line(
                    self.dropped_total(),
                    &vec![0; shards],
                    &self.arbiter.allocations(),
                ))
            }
            // The acks that released this answer carried each shard's
            // calibration sums, so the total reflects exactly the
            // events preceding the query.
            Control::Calibration => Some(self.cal_total().render()),
            c => self.arbiter.answer(c),
        };
        if let Some(answer) = answer {
            match p.reply {
                Some(tx) => {
                    let _ = tx.send(answer);
                }
                None => eprintln!("{answer}"),
            }
        }
    }
}

/// One collector: drain a worker's stdout, folding its messages into
/// the shared state, and flag EOF **after** the drain — failover must
/// never race a dying worker's buffered publishes.
fn collect(slot: usize, out: ChildStdout, shared: &Shared<'_>, eof: &AtomicBool) {
    let reader = BufReader::new(out);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        // A worker killed mid-write leaves a partial last line; skip it
        // (the tail replay recovers whatever it was reporting).
        let Ok(msg) = serde_json::from_str::<WorkerMsg>(&line) else { continue };
        match msg {
            WorkerMsg::Ready => {}
            WorkerMsg::Outcome { shard, outcome, ingested, invalid, dropped } => {
                let key = (outcome.table.map_or(u16::MAX, |t| t.0), outcome.epoch);
                {
                    let mut map = shared.outcomes.lock().expect("outcomes lock poisoned");
                    if let std::collections::btree_map::Entry::Vacant(slot) = map.entry(key) {
                        // Deploy-gate actions trace supervisor-side at
                        // the dedupe point, so a failover replay's
                        // re-reported outcome never double-counts.
                        if let (Some(sink), Some(note)) = (shared.sink, &outcome.deploy) {
                            sink.record(TraceEvent::Deploy {
                                action: note.action.clone(),
                                table: key.0,
                                epoch: outcome.epoch,
                                incumbent_cost: note.incumbent_cost,
                                candidate_cost: note.candidate_cost,
                            });
                        }
                        slot.insert(outcome);
                        shared.board.epochs.fetch_add(1, Ordering::Relaxed);
                    }
                }
                shared.set_counts(shard, ingested, invalid, dropped);
            }
            WorkerMsg::Publish { table, pf } => {
                let trace = shared.sink.map_or(Trace::disabled(), Trace::to);
                shared.arbiter.publish(table, Arc::new(pf), trace);
            }
            WorkerMsg::CheckpointDone { shard, generation, file } => {
                if let Some(c) = shared.committer {
                    match c.done(shard, generation, PathBuf::from(file)) {
                        Ok(true) => {
                            // The generation is durable; a kill in this
                            // window leaves committed state paired with
                            // un-truncated tails, which the next
                            // failover's skip-through-barrier absorbs.
                            if let Err(e) = fault::fire(fault::SUP_TRUNCATE, generation as u32) {
                                shared.fail(e);
                            }
                            {
                                let mut tails =
                                    shared.tails.lock().expect("tails lock poisoned");
                                for tail in tails.values_mut() {
                                    truncate_tail(tail, generation);
                                }
                            }
                            shared.persist_sidecars();
                        }
                        Ok(false) => {}
                        Err(e) => shared.fail(e),
                    }
                }
            }
            WorkerMsg::Ack { id, counts, cal } => {
                for (shard, ingested, invalid, dropped) in counts {
                    shared.set_counts(shard, ingested, invalid, dropped);
                }
                for (shard, snap) in cal {
                    shared.set_cal(shard, snap);
                }
                shared.ack(slot, id);
            }
            WorkerMsg::Final { shard, ingested, invalid, dropped } => {
                shared.set_counts(shard, ingested, invalid, dropped);
            }
            WorkerMsg::Fatal { message } => {
                shared.fail(format!("worker {slot}: {message}"));
            }
        }
    }
    eof.store(true, Ordering::Release);
}

/// One worker slot: the child process, its pipe, and liveness state.
/// The `eof` flag belongs to this *spawn instance* — a respawn installs
/// a fresh slot with a fresh flag and collector.
struct Slot {
    child: Child,
    stdin: Option<ChildStdin>,
    eof: Arc<AtomicBool>,
    current_shard: Option<u32>,
    alive: bool,
}

fn write_slot(slot: &mut Slot, bytes: &[u8]) -> bool {
    match &mut slot.stdin {
        Some(w) => w.write_all(bytes).is_ok(),
        None => false,
    }
}

/// The multi-process supervisor: routes events to worker processes,
/// arbitrates budgets, commits checkpoints, and absorbs worker crashes
/// without changing any selection (see the module docs).
pub struct Supervisor {
    schema: Schema,
    config: ServiceConfig,
    map: ShardMap,
    arbiter: Arbiter,
    interactive: Option<Arc<InteractiveRegistry>>,
    routed_lines: u64,
    next_generation: u64,
    resume_generation: Option<u64>,
    resume_manifest: Option<PathBuf>,
    /// Journal-replay recovery (set by [`Supervisor::set_recovery`]):
    /// route-able records at positions below this are already inside
    /// the restored checkpoint state and replay without routing.
    resume_skip: u64,
    /// Barrier generations at or below this already committed in the
    /// prior incarnation and replay without firing.
    resume_skip_gen: u64,
    /// Prior-incarnation journal size, when recovering (drives the
    /// [`TraceEvent::Recovery`] emission).
    recovered_bytes: Option<u64>,
    /// State directory holding the restart sidecars (`status.json`
    /// counters, `outcomes.json` epoch history).
    state_dir: Option<PathBuf>,
}

impl Supervisor {
    /// Fresh supervisor. Requires `config.shards >= 1` and
    /// `config.workers >= 1`.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem, if any.
    pub fn new(schema: Schema, config: ServiceConfig) -> Result<Self, String> {
        config.validate()?;
        if config.shards == 0 {
            return Err("the supervisor requires shards >= 1".into());
        }
        if config.workers == 0 {
            return Err(
                "the supervisor requires workers >= 1 (0 selects in-process serving)".into()
            );
        }
        let map = ShardMap::new(config.shards, config.shard_map.clone(), schema.tables().len())?;
        let arbiter = Arbiter::new(
            global_budget(&schema, config.budget_share),
            config.tenant_weights.clone(),
        );
        Ok(Self {
            schema,
            config,
            map,
            arbiter,
            interactive: None,
            routed_lines: 0,
            next_generation: 1,
            resume_generation: None,
            resume_manifest: None,
            resume_skip: 0,
            resume_skip_gen: 0,
            recovered_bytes: None,
            state_dir: None,
        })
    }

    /// Resume from a checkpoint manifest: each worker restores its
    /// shards from the committed shard files (via [`SupMsg::Adopt`])
    /// when the run starts. Unlike [`crate::router::Router::resume`],
    /// the shard count must match the manifest — shard state lives in
    /// child processes, and re-packing table groups across shard files
    /// is an in-process feature (resume there once, checkpoint, then
    /// serve multi-process).
    ///
    /// # Errors
    ///
    /// Returns manifest/shard-file problems and config mismatches.
    pub fn resume(
        schema: Schema,
        config: ServiceConfig,
        manifest_path: &Path,
    ) -> Result<Self, String> {
        let mut sup = Self::new(schema, config)?;
        let manifest = Manifest::load(manifest_path)?;
        if manifest.shards != sup.config.shards {
            return Err(format!(
                "manifest was written at {} shards but --shards is {}; the multi-process \
                 supervisor cannot re-pack shard files (resume in-process at the new count, \
                 checkpoint, then serve with --workers)",
                manifest.shards, sup.config.shards
            ));
        }
        for cp in manifest.load_shards(manifest_path)? {
            if cp.config.epoch_events != sup.config.epoch_events
                || cp.config.window_epochs != sup.config.window_epochs
                || cp.config.max_templates != sup.config.max_templates
            {
                return Err(format!(
                    "checkpoint aggregation config (epoch_events={}, window_epochs={}, \
                     max_templates={}) does not match the requested configuration",
                    cp.config.epoch_events, cp.config.window_epochs, cp.config.max_templates
                ));
            }
        }
        sup.routed_lines = manifest.routed_lines;
        sup.next_generation = manifest.generation + 1;
        sup.resume_generation = Some(manifest.generation);
        sup.resume_manifest = Some(manifest_path.to_path_buf());
        Ok(sup)
    }

    /// Switch a (fresh or resumed) supervisor into **journal-replay
    /// recovery**: the run's input opens with the prior incarnation's
    /// complete journal (`journal_bytes` long), so `routed` and the
    /// generation counter restart from zero and count through the
    /// replay — but records the restored checkpoint already contains
    /// are not re-routed, and generations it already committed are not
    /// re-fired. Cadence positions and generation numbering therefore
    /// land exactly where an uninterrupted run would put them, which is
    /// what makes the final merged selection and the checkpoint
    /// documents byte-identical to that run (DESIGN.md §18).
    pub fn set_recovery(&mut self, journal_bytes: u64) {
        self.resume_skip = self.routed_lines;
        self.resume_skip_gen = self.next_generation - 1;
        self.routed_lines = 0;
        self.next_generation = 1;
        self.recovered_bytes = Some(journal_bytes);
    }

    /// Persist restart sidecars into this state directory and restore
    /// them at run start: `status.json` carries the
    /// `failovers`/`restarts`/`reply_errors` counters (so a recovered
    /// supervisor's `{"control":"status"}` reports lifetime history,
    /// not just the current incarnation's), and `outcomes.json` carries
    /// the epoch-outcome history already folded into committed
    /// generations (so the recovered report's epoch lines match the
    /// uninterrupted run's). Both rewrite on every commit edge.
    pub fn set_state_dir(&mut self, dir: PathBuf) {
        self.state_dir = Some(dir);
    }

    /// The live frontier arbiter (maintained allocations, interactive
    /// answers, merged selection).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Attach the reply registry interactive socket queries route
    /// through; without one, in-stream query answers print to stderr.
    pub fn set_interactive(&mut self, registry: Arc<InteractiveRegistry>) {
        self.interactive = Some(registry);
    }

    /// Number of shards routed across the worker processes.
    pub fn shards(&self) -> u32 {
        self.map.shards()
    }

    /// Number of worker processes spawned per run.
    pub fn workers(&self) -> u32 {
        self.config.workers
    }

    pub(crate) fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Run the supervisor over a line-based input until EOF or a
    /// `shutdown` control: spawn the workers, route every event to its
    /// shard's hosting process, commit checkpoint generations, fail
    /// over dead workers, and at the end drain the children and report
    /// — with a `final_selection` byte-identical to the in-process
    /// router's over the same events, crashes or not.
    ///
    /// `sink` receives the supervisor-side trace:
    /// [`TraceEvent::Merge`] per arbiter fold and one
    /// [`TraceEvent::Failover`] per restored shard. (Workers do not
    /// trace their tuning runs — see [`run_worker`].)
    ///
    /// # Errors
    ///
    /// Returns spawn/protocol/checkpoint failures, and gives up when
    /// repeated worker deaths exhaust the failover attempt budget.
    pub fn run_reader<R: BufRead>(
        &mut self,
        input: R,
        checkpoint: Option<&Path>,
        sink: Option<&dyn TraceSink>,
    ) -> Result<ServiceReport, String> {
        let t_start = Instant::now();
        let shards = self.map.shards();
        let workers = self.config.workers as usize;
        let board = StatusBoard::new(shards);
        let status_path = self.state_dir.as_ref().map(|d| d.join("status.json"));
        let outcomes_path = self.state_dir.as_ref().map(|d| d.join("outcomes.json"));
        if let Some(p) = &status_path {
            crate::status::PersistedStatus::load(p).apply(&board);
        }
        let committer =
            checkpoint.map(|p| Committer::new(p, shards, &board));
        // Epoch outcomes folded into committed generations by prior
        // incarnations replay without re-tuning, so their report lines
        // come from the sidecar, not from the workers.
        let mut prior_outcomes: BTreeMap<(u16, u64), EpochOutcome> = BTreeMap::new();
        if self.recovered_bytes.is_some() {
            if let Some(c) = &committer {
                c.prime(self.resume_skip_gen);
            }
            if let Some(p) = &outcomes_path {
                prior_outcomes = load_outcomes(p);
                board.epochs.store(prior_outcomes.len() as u64, Ordering::Relaxed);
            }
        }
        crate::status::install_child_signal();

        let shared = Shared {
            outcomes: Mutex::new(prior_outcomes),
            counts: Mutex::new(BTreeMap::new()),
            cal: Mutex::new(BTreeMap::new()),
            pending: Mutex::new(HashMap::new()),
            tails: Mutex::new((0..shards).map(|k| (k, VecDeque::new())).collect()),
            failure: Mutex::new(None),
            board: &board,
            committer: committer.as_ref(),
            arbiter: &self.arbiter,
            sink,
            status_path,
            outcomes_path,
        };

        // Fault-injection scoping: the supervisor parses the schedule
        // itself (firing the sup.* sites in-process) and re-serializes
        // each worker.* entry into the environment of exactly ONE
        // child — the initial owner slot of the entry's scope shard.
        // Every other child and every respawned replacement gets the
        // variable stripped, otherwise the adopting survivor would
        // inherit the fault and die in a loop. A malformed schedule
        // disables injection (fault::fire warns once).
        let worker_faults: Vec<Option<String>> = {
            let sched = std::env::var(fault::ENV_SCHEDULE)
                .ok()
                .and_then(|spec| fault::Schedule::parse(&spec).ok())
                .unwrap_or_default();
            (0..workers).map(|w| sched.worker_spec(w as u32, workers as u32)).collect()
        };

        let schema = &self.schema;
        let config = &self.config;
        let map = &self.map;
        let arbiter = &self.arbiter;
        let interactive = self.interactive.clone();
        let respawn = self.config.respawn;
        let resume_generation = self.resume_generation;
        let resume_manifest = self.resume_manifest.clone();
        let resume_skip = self.resume_skip;
        let skip_gen = self.resume_skip_gen;
        let recovered_bytes = self.recovered_bytes;
        let barrier_every = self
            .config
            .checkpoint_every_epochs
            .saturating_mul(self.config.epoch_events);
        let start_routed = self.routed_lines;
        let start_gen = self.next_generation;

        let scope_result: Result<(u64, u64, Option<u64>), String> =
            std::thread::scope(|s| {
                let spawn_worker = |slot_idx: usize,
                                   hello_shards: Vec<u32>,
                                   initial: bool|
                 -> Result<Slot, String> {
                    let exe = std::env::current_exe()
                        .map_err(|e| format!("locate worker executable: {e}"))?;
                    let mut cmd = Command::new(exe);
                    cmd.arg("worker")
                        .stdin(Stdio::piped())
                        .stdout(Stdio::piped())
                        .env_remove(fault::ENV_SCHEDULE);
                    if initial {
                        if let Some(spec) = &worker_faults[slot_idx] {
                            cmd.env(fault::ENV_SCHEDULE, spec);
                        }
                    }
                    let mut child =
                        cmd.spawn().map_err(|e| format!("spawn worker: {e}"))?;
                    let mut stdin = child.stdin.take().expect("piped stdin");
                    let stdout = child.stdout.take().expect("piped stdout");
                    let eof = Arc::new(AtomicBool::new(false));
                    {
                        let eof = Arc::clone(&eof);
                        let shared = &shared;
                        s.spawn(move || collect(slot_idx, stdout, shared, &eof));
                    }
                    let hello = SupMsg::Hello {
                        schema: Box::new(schema.clone()),
                        config: Box::new(config.clone()),
                        shards: hello_shards,
                        manifest: checkpoint.map(|p| p.to_string_lossy().into_owned()),
                    };
                    if stdin.write_all(&sup_frame(&hello)?).is_err() {
                        return Err("worker died during handshake".into());
                    }
                    Ok(Slot { child, stdin: Some(stdin), eof, current_shard: None, alive: true })
                };

                // Where a failed-over shard restores from: the last
                // generation committed THIS run, else the resumed one.
                // Returns the checkpoint *document*, not a path —
                // [`Committer::read_committed`] snapshots generation
                // and contents under one lock, because the file behind
                // any path handed out here can be garbage-collected by
                // a later commit before the adopter opens it.
                let restore_source = |k: u32| -> Result<(u64, Option<String>), String> {
                    if let (Some(c), Some(m)) = (committer.as_ref(), checkpoint) {
                        if let Some((g, text)) = c.read_committed(|g| shard_file(m, k, g))? {
                            return Ok((g, Some(text)));
                        }
                    }
                    if let (Some(g), Some(m)) = (resume_generation, &resume_manifest) {
                        // Resumed files predate this run; its committer
                        // never deletes them, so a plain read is safe.
                        let path = shard_file(m, k, g);
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| format!("read {}: {e}", path.display()))?;
                        return Ok((g, Some(text)));
                    }
                    Ok((0, None))
                };

                // The failover budget is shared across *every*
                // `do_failover` call and resets only on real progress
                // (a fresh epoch outcome or a committed generation).
                // A per-call counter would let a persistent fault — a
                // worker that dies the same way every time it adopts a
                // shard — cycle adopt → die forever, one death per
                // call; consecutive deaths with nothing committed in
                // between must instead exhaust the budget and abort.
                let progress = || {
                    board.epochs.load(Ordering::Relaxed)
                        + committer.as_ref().map_or(0, |c| c.commits())
                };
                let death_streak = std::cell::Cell::new((progress(), 0usize));

                // Restore every shard owned by a dead slot onto a
                // survivor (or respawned replacement), replay its tail,
                // then re-arm pending interactive queries. Loops until
                // the topology is quiet; nested deaths re-enter the
                // worklist, bounded by the attempt budget.
                let do_failover = |slots: &mut Vec<Slot>,
                                   owners: &mut Vec<usize>,
                                   mut dead: Vec<usize>|
                 -> Result<(), String> {
                    loop {
                        while let Some(d) = dead.pop() {
                            let now = progress();
                            let (seen, n) = death_streak.get();
                            let n = if now != seen { 1 } else { n + 1 };
                            death_streak.set((now, n));
                            if n > 3 * slots.len() + 3 {
                                return Err(
                                    "giving up after repeated worker deaths without progress \
                                     during failover"
                                        .into(),
                                );
                            }
                            if !slots[d].alive && !owners.contains(&d) {
                                continue;
                            }
                            slots[d].alive = false;
                            slots[d].stdin = None;
                            slots[d].child.kill().ok();
                            // Let the collector drain every buffered
                            // message first: adopter publishes must not
                            // overtake the dead worker's.
                            let deadline = Instant::now() + Duration::from_secs(10);
                            while !slots[d].eof.load(Ordering::Acquire)
                                && Instant::now() < deadline
                            {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            slots[d].child.wait().ok();

                            let moved: Vec<u32> = owners
                                .iter()
                                .enumerate()
                                .filter(|&(_, &o)| o == d)
                                .map(|(k, _)| k as u32)
                                .collect();
                            if moved.is_empty() {
                                continue;
                            }
                            fault::fire(fault::SUP_FAILOVER, d as u32)?;
                            let survivor = slots.iter().position(|s| s.alive);
                            let target = match survivor {
                                Some(t) if !respawn => t,
                                _ => match spawn_worker(d, Vec::new(), false) {
                                    Ok(slot) => {
                                        slots[d] = slot;
                                        board.restarts.fetch_add(1, Ordering::Relaxed);
                                        d
                                    }
                                    Err(e) => match survivor {
                                        Some(t) => t,
                                        None => return Err(e),
                                    },
                                },
                            };
                            // Reassign ownership up front: if the target
                            // dies mid-restore, its own failover re-moves
                            // every shard, including not-yet-restored ones.
                            for &k in &moved {
                                owners[k as usize] = target;
                            }
                            let mut target_down = false;
                            for &k in &moved {
                                let t0 = Instant::now();
                                fault::fire(fault::SUP_ADOPT, k)?;
                                let mut replayed = 0u64;
                                let (generation, bytes) = {
                                    // The restore snapshot and the tail
                                    // must be read under ONE tails lock:
                                    // a commit completes first and
                                    // truncates the tails second, and
                                    // landing between the two would pair
                                    // a generation-g checkpoint with a
                                    // pre-g tail — replaying events the
                                    // checkpoint already contains. (The
                                    // committer lock nests inside; its
                                    // callers never hold it while taking
                                    // the tails lock.)
                                    let tails =
                                        shared.tails.lock().expect("tails lock poisoned");
                                    let (generation, data) = restore_source(k)?;
                                    let mut bytes =
                                        sup_frame(&SupMsg::Adopt { shard: k, data })?;
                                    bytes.extend(sup_frame(&SupMsg::Shard { shard: k })?);
                                    let tail = &tails[&k];
                                    // If that race did hit, generation g's
                                    // barrier entry is still in the tail;
                                    // skip through it ourselves.
                                    let skip = tail
                                        .iter()
                                        .position(|e| {
                                            matches!(e, TailEntry::Barrier(g) if *g == generation)
                                        })
                                        .map_or(0, |p| p + 1);
                                    for entry in tail.iter().skip(skip) {
                                        match entry {
                                            TailEntry::Line(l) => {
                                                bytes.extend(raw_frame(l));
                                                replayed += 1;
                                            }
                                            TailEntry::Barrier(g) => {
                                                bytes.extend(sup_frame(&SupMsg::Barrier {
                                                    generation: *g,
                                                    shards: Some(vec![k]),
                                                })?);
                                            }
                                        }
                                    }
                                    (generation, bytes)
                                };
                                if !write_slot(&mut slots[target], &bytes) {
                                    target_down = true;
                                    break;
                                }
                                slots[target].current_shard = Some(k);
                                board.failovers.fetch_add(1, Ordering::Relaxed);
                                if let Some(sink) = sink {
                                    sink.record(TraceEvent::Failover {
                                        shard: k,
                                        generation,
                                        replayed,
                                        adopted_by: target as u32,
                                        micros: t0.elapsed().as_micros() as u64,
                                    });
                                }
                            }
                            if target_down {
                                dead.push(target);
                            }
                        }
                        // Re-arm pending interactive queries under the
                        // new topology: every live worker must ack again
                        // (workers ack every Query they see, so the
                        // at-least-once re-send is safe).
                        let live: std::collections::HashSet<usize> = slots
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.alive)
                            .map(|(i, _)| i)
                            .collect();
                        let ids: Vec<u64> = {
                            let mut pending =
                                shared.pending.lock().expect("pending lock poisoned");
                            for p in pending.values_mut() {
                                p.waiting.clone_from(&live);
                            }
                            pending.keys().copied().collect()
                        };
                        for id in &ids {
                            let frame = sup_frame(&SupMsg::Query { id: *id })?;
                            for (i, slot) in slots.iter_mut().enumerate() {
                                if slot.alive && !write_slot(slot, &frame) {
                                    dead.push(i);
                                }
                            }
                        }
                        if dead.is_empty() {
                            // The failover/restart counters just moved;
                            // make them durable for the next incarnation.
                            shared.persist_sidecars();
                            return Ok(());
                        }
                    }
                };

                let sweep = |slots: &mut Vec<Slot>,
                             owners: &mut Vec<usize>|
                 -> Result<(), String> {
                    let dead: Vec<usize> = slots
                        .iter()
                        .enumerate()
                        .filter(|(_, sl)| sl.alive && sl.eof.load(Ordering::Acquire))
                        .map(|(i, _)| i)
                        .collect();
                    if dead.is_empty() {
                        Ok(())
                    } else {
                        do_failover(slots, owners, dead)
                    }
                };

                // Route one event line: append to the shard's tail
                // FIRST (a line lost in a dying pipe is then still
                // replayed), switch the worker's current shard if
                // needed, write, and fail over on a broken pipe.
                let route = |slots: &mut Vec<Slot>,
                             owners: &mut Vec<usize>,
                             shard: u32,
                             line: &str|
                 -> Result<(), String> {
                    // Fires before the tail append: a kill here loses
                    // nothing, because the input journal already holds
                    // this line (teed at consume time).
                    fault::fire(fault::SUP_ROUTE, shard)?;
                    shared
                        .tails
                        .lock()
                        .expect("tails lock poisoned")
                        .get_mut(&shard)
                        .expect("tail exists for every shard")
                        .push_back(TailEntry::Line(line.to_owned()));
                    let idx = owners[shard as usize];
                    let slot = &mut slots[idx];
                    let mut bytes = Vec::new();
                    if slot.current_shard != Some(shard) {
                        bytes.extend(sup_frame(&SupMsg::Shard { shard })?);
                        slot.current_shard = Some(shard);
                    }
                    bytes.extend(raw_frame(line));
                    if slot.alive && write_slot(slot, &bytes) {
                        Ok(())
                    } else {
                        // Do NOT retry the write: the line is in the
                        // tail, and the failover replay delivers it.
                        do_failover(slots, owners, vec![idx])
                    }
                };

                let barrier = |slots: &mut Vec<Slot>,
                               owners: &mut Vec<usize>,
                               gen: u64,
                               routed: u64|
                 -> Result<(), String> {
                    let Some(c) = committer.as_ref() else { return Ok(()) };
                    fault::fire(fault::SUP_BARRIER_OPEN, gen as u32)?;
                    c.open(gen, routed);
                    {
                        let mut tails = shared.tails.lock().expect("tails lock poisoned");
                        for tail in tails.values_mut() {
                            tail.push_back(TailEntry::Barrier(gen));
                        }
                    }
                    let frame = sup_frame(&SupMsg::Barrier { generation: gen, shards: None })?;
                    let mut dead = Vec::new();
                    for (i, slot) in slots.iter_mut().enumerate() {
                        if slot.alive && !write_slot(slot, &frame) {
                            dead.push(i);
                        }
                    }
                    if dead.is_empty() {
                        Ok(())
                    } else {
                        do_failover(slots, owners, dead)
                    }
                };

                let enqueue_query = |slots: &mut Vec<Slot>,
                                     owners: &mut Vec<usize>,
                                     id: u64,
                                     c: Control,
                                     reply: Option<Sender<String>>|
                 -> Result<(), String> {
                    let waiting: std::collections::HashSet<usize> = slots
                        .iter()
                        .enumerate()
                        .filter(|(_, sl)| sl.alive)
                        .map(|(i, _)| i)
                        .collect();
                    shared
                        .pending
                        .lock()
                        .expect("pending lock poisoned")
                        .insert(id, PendingInteractive { control: c, waiting, reply });
                    let frame = sup_frame(&SupMsg::Query { id })?;
                    let mut dead = Vec::new();
                    for (i, slot) in slots.iter_mut().enumerate() {
                        if slot.alive && !write_slot(slot, &frame) {
                            dead.push(i);
                        }
                    }
                    if dead.is_empty() {
                        Ok(())
                    } else {
                        do_failover(slots, owners, dead)
                    }
                };

                // --- Spawn the fleet and restore resumed state.
                let mut slots: Vec<Slot> = Vec::with_capacity(workers);
                for w in 0..workers {
                    let hosted: Vec<u32> =
                        (0..shards).filter(|k| (*k as usize) % workers == w).collect();
                    slots.push(spawn_worker(w, hosted, true)?);
                }
                let mut owners: Vec<usize> =
                    (0..shards).map(|k| (k as usize) % workers).collect();
                if let (Some(gen), Some(m)) = (resume_generation, &resume_manifest) {
                    for k in 0..shards {
                        let path = shard_file(m, k, gen);
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| format!("read {}: {e}", path.display()))?;
                        let frame =
                            sup_frame(&SupMsg::Adopt { shard: k, data: Some(text) })?;
                        let idx = owners[k as usize];
                        if !write_slot(&mut slots[idx], &frame) {
                            do_failover(&mut slots, &mut owners, vec![idx])?;
                        }
                    }
                }
                if let (Some(journal_bytes), Some(sink)) = (recovered_bytes, sink) {
                    sink.record(TraceEvent::Recovery {
                        generation: skip_gen,
                        skipped: resume_skip,
                        journal_bytes,
                        micros: t_start.elapsed().as_micros() as u64,
                    });
                }

                let mut routed = start_routed;
                let mut next_gen = start_gen;
                let mut next_query_id = 0u64;
                // Tables of every binary `Define` seen, by stream-global
                // template id: events re-render as canonical JSONL
                // through this dictionary, so worker streams (and
                // therefore failover tails) carry no dictionary state.
                let mut templates: Vec<(u16, QueryKind, Vec<u32>)> = Vec::new();
                const INVALID_LINE: &str = "{\"invalid\":\"undecodable binary item\"}";

                for record in RecordIter::new(input) {
                    if let Some(e) = shared.take_failure() {
                        return Err(e);
                    }
                    if take_child_signal() {
                        // Reaping happens inside the failover; the
                        // signal just prompts the sweep.
                    }
                    sweep(&mut slots, &mut owners)?;
                    if take_status_signal() {
                        eprintln!(
                            "{}",
                            board.line(
                                shared.dropped_total(),
                                &vec![0; shards as usize],
                                &arbiter.allocations()
                            )
                        );
                    }
                    let record = match record {
                        Record::Item(WireItem::Tagged { item, .. }) => Record::Item(*item),
                        r => r,
                    };
                    let record = match record {
                        Record::Item(WireItem::Raw(bytes)) => {
                            Record::Line(String::from_utf8_lossy(&bytes).into_owned())
                        }
                        r => r,
                    };
                    let mut did_route = false;
                    match record {
                        Record::Line(line) => {
                            let trimmed = line.trim();
                            if trimmed.is_empty() {
                                continue;
                            }
                            match classify_line(trimmed) {
                                LineClass::Table(t) => {
                                    // Recovery: records below resume_skip
                                    // are already inside the restored
                                    // checkpoint state — count them (so
                                    // cadence positions match the clean
                                    // run) but do not re-route them.
                                    if routed >= resume_skip {
                                        route(&mut slots, &mut owners, map.shard_of(t), trimmed)?;
                                    }
                                    did_route = true;
                                }
                                LineClass::Control => match parse_line(trimmed, schema) {
                                    Ok(InputLine::Control(Control::Shutdown)) => break,
                                    Ok(InputLine::Control(Control::Checkpoint)) => {
                                        if committer.is_some() {
                                            let gen = next_gen;
                                            next_gen += 1;
                                            if gen > skip_gen {
                                                barrier(&mut slots, &mut owners, gen, routed)?;
                                            }
                                        }
                                    }
                                    Ok(InputLine::Control(
                                        c @ (Control::Status
                                        | Control::Whatif { .. }
                                        | Control::Tenant { .. }
                                        | Control::Budget { .. }
                                        | Control::Calibration),
                                    )) => {
                                        let reply = interactive.as_ref().and_then(|reg| {
                                            parse_token(trimmed).and_then(|t| reg.take(t))
                                        });
                                        let id = next_query_id;
                                        next_query_id += 1;
                                        enqueue_query(
                                            &mut slots,
                                            &mut owners,
                                            id,
                                            c,
                                            reply,
                                        )?;
                                    }
                                    Ok(InputLine::Query(_) | InputLine::Observed(_))
                                    | Err(_) => {
                                        if routed >= resume_skip {
                                            route(
                                                &mut slots,
                                                &mut owners,
                                                map.opaque_shard(),
                                                trimmed,
                                            )?;
                                        }
                                        did_route = true;
                                    }
                                },
                                LineClass::Opaque => {
                                    if routed >= resume_skip {
                                        route(
                                            &mut slots,
                                            &mut owners,
                                            map.opaque_shard(),
                                            trimmed,
                                        )?;
                                    }
                                    did_route = true;
                                }
                            }
                        }
                        Record::Item(WireItem::Define { table, kind, attrs }) => {
                            // Defines never route or count (mirrors the
                            // in-process router): the dictionary lives
                            // here, and events re-render through it.
                            templates.push((table, kind, attrs));
                        }
                        Record::Item(WireItem::Event { template, frequency }) => {
                            match usize::try_from(template)
                                .ok()
                                .and_then(|t| templates.get(t))
                            {
                                Some((t, kind, attrs)) => {
                                    if routed >= resume_skip {
                                        let line =
                                            render_query(None, *t, attrs, frequency, *kind);
                                        route(&mut slots, &mut owners, map.shard_of(*t), &line)?;
                                    }
                                }
                                None => {
                                    if routed >= resume_skip {
                                        route(
                                            &mut slots,
                                            &mut owners,
                                            map.opaque_shard(),
                                            INVALID_LINE,
                                        )?;
                                    }
                                }
                            }
                            did_route = true;
                        }
                        Record::Item(WireItem::Control(Control::Shutdown)) => break,
                        Record::Item(WireItem::Control(Control::Checkpoint)) => {
                            if committer.is_some() {
                                let gen = next_gen;
                                next_gen += 1;
                                if gen > skip_gen {
                                    barrier(&mut slots, &mut owners, gen, routed)?;
                                }
                            }
                        }
                        Record::Item(WireItem::Control(
                            c @ (Control::Status
                            | Control::Whatif { .. }
                            | Control::Tenant { .. }
                            | Control::Budget { .. }
                            | Control::Calibration),
                        )) => {
                            let id = next_query_id;
                            next_query_id += 1;
                            enqueue_query(&mut slots, &mut owners, id, c, None)?;
                        }
                        Record::Item(_) => {
                            if routed >= resume_skip {
                                route(&mut slots, &mut owners, map.opaque_shard(), INVALID_LINE)?;
                            }
                            did_route = true;
                        }
                        Record::Corrupt => {
                            if routed >= resume_skip {
                                route(&mut slots, &mut owners, map.opaque_shard(), INVALID_LINE)?;
                            }
                            did_route = true;
                        }
                    }
                    if did_route {
                        routed += 1;
                        if barrier_every > 0 && routed.is_multiple_of(barrier_every) {
                            let gen = next_gen;
                            next_gen += 1;
                            // Recovery: the prior incarnation already
                            // committed generations ≤ skip_gen; count
                            // them (so numbering matches the clean run)
                            // but do not re-fire them.
                            if gen > skip_gen {
                                barrier(&mut slots, &mut owners, gen, routed)?;
                            }
                        }
                    }
                }

                // --- Quiesce: an in-band liveness barrier. The routing
                // loop only notices a death while it still has bytes to
                // write, and a small stream fits whole into the pipe
                // buffers — so a worker can die holding routed events it
                // never ingested, strictly *after* routing ends. Every
                // live worker must ack a final Query (acks are in-band,
                // so an ack proves everything routed before it was
                // consumed) before the fleet may retire; a worker that
                // dies instead is failed over here, and its tail replay
                // re-feeds exactly the unacked events. `Shutdown` is the
                // sentinel control the arbiter answers with silence.
                {
                    // The last id ever issued — no increment needed.
                    let qid = next_query_id;
                    enqueue_query(&mut slots, &mut owners, qid, Control::Shutdown, None)?;
                    let deadline = Instant::now() + Duration::from_secs(600);
                    loop {
                        if let Some(e) = shared.take_failure() {
                            return Err(e);
                        }
                        let done = !shared
                            .pending
                            .lock()
                            .expect("pending lock poisoned")
                            .contains_key(&qid);
                        if done {
                            break;
                        }
                        sweep(&mut slots, &mut owners)?;
                        if Instant::now() > deadline {
                            return Err(
                                "timed out waiting for workers to quiesce at shutdown".into()
                            );
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }

                // --- Shutdown: final generation, then drain the fleet.
                let mut final_committed = None;
                if committer.is_some() {
                    barrier(&mut slots, &mut owners, next_gen, routed)?;
                    let final_gen = next_gen;
                    next_gen += 1;
                    // Wait out the final commit, absorbing deaths: a
                    // dead worker's tail ends with the scoped final
                    // barrier, so its adopter completes the generation.
                    let deadline = Instant::now() + Duration::from_secs(600);
                    loop {
                        if let Some(e) = shared.take_failure() {
                            return Err(e);
                        }
                        if committer.as_ref().and_then(|c| c.committed()) == Some(final_gen)
                        {
                            break;
                        }
                        sweep(&mut slots, &mut owners)?;
                        if Instant::now() > deadline {
                            return Err(
                                "timed out waiting for the final checkpoint generation"
                                    .into(),
                            );
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    final_committed = Some(final_gen);
                }
                // Everything reportable is already in: outcomes and
                // publishes stream ahead of the final barrier, and with
                // checkpointing the final shard files carry exact
                // counters. Shutdown is therefore best-effort.
                let bye = sup_frame(&SupMsg::Shutdown)?;
                for slot in &mut slots {
                    if slot.alive {
                        let _ = write_slot(slot, &bye);
                    }
                    slot.stdin = None;
                }
                for slot in &mut slots {
                    slot.child.wait().ok();
                }
                Ok((routed, next_gen, final_committed))
            });

        let (routed, next_gen, final_committed) = scope_result?;
        self.routed_lines = routed;
        self.next_generation = next_gen;
        shared.persist_sidecars();
        if let Some(e) = shared.take_failure() {
            return Err(e);
        }
        // With a committed final generation, the shard files carry
        // exact counters — authoritative even if a worker died between
        // the commit and its Final report.
        if let (Some(gen), Some(m)) = (final_committed, checkpoint) {
            for k in 0..shards {
                if let Ok(cp) = ShardCheckpoint::load(&shard_file(m, k, gen)) {
                    shared.set_counts(k, cp.ingested, cp.invalid, cp.dropped);
                }
            }
        }
        let epochs: Vec<EpochOutcome> = shared
            .outcomes
            .into_inner()
            .expect("outcomes lock poisoned")
            .into_values()
            .collect();
        let counts = shared.counts.into_inner().expect("counts lock poisoned");
        let (ingested, invalid, dropped) = counts
            .values()
            .fold((0u64, 0u64, 0u64), |(i, v, d), &(ci, cv, cd)| {
                (i + ci, v + cv, d + cd)
            });
        Ok(ServiceReport {
            epochs,
            ingested,
            invalid,
            dropped,
            queue_high_water: 0,
            checkpoints_written: committer.as_ref().map_or(0, Committer::commits),
            final_selection: self.arbiter.merged_selection(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftThresholds;
    use isel_workload::synthetic::{self, SyntheticConfig};
    use isel_workload::Workload;
    use std::io::Cursor;

    fn workload() -> Workload {
        synthetic::generate(&SyntheticConfig {
            tables: 2,
            attrs_per_table: 6,
            queries_per_table: 6,
            rows_base: 40_000,
            max_query_width: 3,
            update_fraction: 0.1,
            seed: 41,
        })
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            max_templates: 64,
            drift: DriftThresholds::always_adapt(),
            shards: 1,
            workers: 1,
            ..ServiceConfig::default()
        }
    }

    /// `n` copies of one table-0 query as canonical event lines, so
    /// exactly `n / epoch_events` epochs seal on that group.
    fn table0_lines(w: &Workload, n: usize) -> Vec<String> {
        let q = w
            .queries()
            .iter()
            .find(|q| q.table().0 == 0 && !q.is_update())
            .expect("synthetic workload has table-0 selects");
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        let line = format!("{{\"table\":0,\"attrs\":[{}]}}", attrs.join(","));
        vec![line; n]
    }

    fn hello(w: &Workload, shards: Vec<u32>, manifest: Option<String>) -> Vec<u8> {
        sup_frame(&SupMsg::Hello {
            schema: Box::new(w.schema().clone()),
            config: Box::new(config()),
            shards,
            manifest,
        })
        .unwrap()
    }

    /// Drive `run_worker_io` over an in-memory stream and parse its
    /// replies.
    fn drive(frames: &[Vec<u8>]) -> Result<Vec<WorkerMsg>, String> {
        let input: Vec<u8> = frames.concat();
        let mut out = Vec::new();
        run_worker_io(Cursor::new(input), &mut out)?;
        String::from_utf8(out)
            .map_err(|e| e.to_string())?
            .lines()
            .map(|l| serde_json::from_str::<WorkerMsg>(l).map_err(|e| e.to_string()))
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("isel_process_tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sup_and_worker_msgs_round_trip() {
        let msgs = [
            SupMsg::Shard { shard: 3 },
            SupMsg::Barrier { generation: 7, shards: Some(vec![1, 2]) },
            SupMsg::Query { id: 11 },
            SupMsg::Adopt { shard: 0, data: Some("{\"v\":1}".into()) },
            SupMsg::Shutdown,
        ];
        for m in msgs {
            let json = serde_json::to_string(&m).unwrap();
            let back: SupMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(format!("{m:?}"), format!("{back:?}"));
        }
        let m = WorkerMsg::Final { shard: 2, ingested: 5, invalid: 1, dropped: 0 };
        let json = serde_json::to_string(&m).unwrap();
        let back: WorkerMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn tail_truncates_through_the_committed_barrier() {
        let mut tail: VecDeque<TailEntry> = VecDeque::new();
        tail.push_back(TailEntry::Line("a".into()));
        tail.push_back(TailEntry::Barrier(0));
        tail.push_back(TailEntry::Line("b".into()));
        tail.push_back(TailEntry::Barrier(1));
        tail.push_back(TailEntry::Line("c".into()));
        truncate_tail(&mut tail, 99); // unknown generation: no-op
        assert_eq!(tail.len(), 5);
        truncate_tail(&mut tail, 1);
        assert_eq!(tail.len(), 1);
        assert!(matches!(&tail[0], TailEntry::Line(l) if l == "c"));
    }

    #[test]
    fn worker_requires_hello_first() {
        let frames = [sup_frame(&SupMsg::Shard { shard: 0 }).unwrap()];
        let err = drive(&frames).unwrap_err();
        assert!(err.contains("expected Hello"), "{err}");
    }

    #[test]
    fn worker_seals_epochs_and_reports_final_counters() {
        let w = workload();
        let mut frames = vec![hello(&w, vec![0], None)];
        frames.push(sup_frame(&SupMsg::Shard { shard: 0 }).unwrap());
        for line in table0_lines(&w, 16) {
            frames.push(raw_frame(&line));
        }
        frames.push(raw_frame("garbage"));
        frames.push(sup_frame(&SupMsg::Query { id: 4 }).unwrap());
        frames.push(sup_frame(&SupMsg::Shutdown).unwrap());
        let msgs = drive(&frames).unwrap();
        assert!(matches!(msgs[0], WorkerMsg::Ready));
        let outcomes: Vec<_> = msgs
            .iter()
            .filter(|m| matches!(m, WorkerMsg::Outcome { .. }))
            .collect();
        assert_eq!(outcomes.len(), 2, "16 events / 8 per epoch on one group");
        assert!(
            msgs.iter().any(|m| matches!(m, WorkerMsg::Ack { id: 4, .. })),
            "query barrier acknowledged"
        );
        assert!(
            msgs.iter().any(
                |m| matches!(m, WorkerMsg::Final { shard: 0, ingested: 16, invalid: 1, .. })
            ),
            "final counters: {msgs:?}"
        );
    }

    #[test]
    fn adopted_checkpoint_continues_counts() {
        let w = workload();
        let manifest = tmp("adopt").join("manifest.json");
        let manifest_s = manifest.to_string_lossy().into_owned();

        let mut frames = vec![hello(&w, vec![0], Some(manifest_s))];
        frames.push(sup_frame(&SupMsg::Shard { shard: 0 }).unwrap());
        for line in table0_lines(&w, 8) {
            frames.push(raw_frame(&line));
        }
        frames.push(sup_frame(&SupMsg::Barrier { generation: 0, shards: None }).unwrap());
        frames.push(sup_frame(&SupMsg::Shutdown).unwrap());
        let msgs = drive(&frames).unwrap();
        let file = msgs
            .iter()
            .find_map(|m| match m {
                WorkerMsg::CheckpointDone { shard: 0, generation: 0, file } => {
                    Some(file.clone())
                }
                _ => None,
            })
            .expect("checkpoint written");

        // A second worker adopts the checkpoint document and continues
        // where the first one stopped: absolute counters carry over.
        let text = std::fs::read_to_string(&file).unwrap();
        let mut frames = vec![hello(&w, vec![], None)];
        frames.push(sup_frame(&SupMsg::Adopt { shard: 0, data: Some(text) }).unwrap());
        frames.push(sup_frame(&SupMsg::Shard { shard: 0 }).unwrap());
        for line in table0_lines(&w, 8) {
            frames.push(raw_frame(&line));
        }
        frames.push(sup_frame(&SupMsg::Shutdown).unwrap());
        let msgs = drive(&frames).unwrap();
        assert!(
            msgs.iter().any(
                |m| matches!(m, WorkerMsg::Final { shard: 0, ingested: 16, invalid: 0, .. })
            ),
            "adopted shard continued the count: {msgs:?}"
        );
        let outcomes: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                WorkerMsg::Outcome { outcome, .. } => Some(outcome.epoch),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes, vec![1], "second epoch seals on the adopted window");
    }
}
