//! Online continuous-tuning daemon (`isel-service`).
//!
//! The paper's evaluation is one-shot: a workload arrives, Algorithm 1
//! selects, the experiment ends. This crate closes the loop for the
//! Section-VII "workloads that change over time" scenario as a
//! long-running advisor built from the existing layers:
//!
//! 1. **Ingestion** ([`event`], [`queue`], [`socket`]) — query events
//!    from stdin, a file, or a Unix-domain socket flow through a bounded
//!    queue. Replay uses blocking pushes (lossless); live serving uses a
//!    drop-oldest overload policy whose every drop is *counted*, never
//!    silent. Events arrive in either of two peer encodings, mixed
//!    freely on one stream and auto-detected per record by a magic byte
//!    ([`records`]): JSONL lines, or the length-prefixed checksummed
//!    binary frames of [`frame`] (interned query templates, varint ids —
//!    DESIGN.md §14). Journals ([`journal`]) write either encoding,
//!    optionally rotating into size-bounded segments behind a manifest,
//!    and `convert` translates between them losslessly; replay can mmap
//!    a journal ([`mmap`]) and decode with zero per-event allocation.
//! 2. **Aggregation** ([`window`]) — events are batched into fixed-size
//!    *epochs*; a sliding window of the last `window_epochs` epochs is
//!    merged, deterministically ordered, and compressed with
//!    `compress::top_k_by_weight` into one [`Workload`] snapshot per
//!    sealed epoch.
//! 3. **Tuning** ([`tuner`]) — a drift detector
//!    (`workload::drift::attribute_overlap` against the last re-selected
//!    snapshot) picks a per-epoch policy: keep the selection (no-op),
//!    reconfiguration-aware re-selection (`core::reconfig` as in
//!    `dynamic::adapt`), or a from-scratch run — always under the
//!    relative memory budget of Eq. (10).
//! 4. **State** ([`checkpoint`]) — the interned [`IndexPool`], current
//!    selection, window contents and counters serialize to a JSON
//!    checkpoint written atomically; a restarted daemon restores it and
//!    continues **bit-identically** with an uninterrupted run.
//! 5. **Control** ([`daemon`]) — EOF or a `{"control":"shutdown"}` line
//!    drains the queue, tunes any sealed epochs, and writes a final
//!    checkpoint; `{"control":"checkpoint"}` snapshots mid-stream in
//!    event order. Runs emit the same [`isel_core::TraceEvent`] stream as
//!    the offline strategies, so `isel report --check` works on daemon
//!    traces.
//!
//! **Determinism contract** (DESIGN.md §12): replaying a recorded log
//! with drift thresholds forcing the adapt policy produces a selection
//! sequence bit-identical to the offline `dynamic::adapt` loop over the
//! same epoch snapshots, at every thread count.
//!
//! # Sharding
//!
//! For multi-table workloads the daemon scales out across worker threads
//! ([`router`], [`shard`]): a [`Router`] classifies raw JSONL lines by
//! table group with a byte-scanning fast path (binary events route by
//! their template's table without any parse at all), fans them out over
//! per-shard bounded queues, and each shard tunes its table groups
//! independently — per-group windows, drift baselines and index pools.
//! Because the unit of tuning state is always a single table group, the
//! selection sequence is **bit-identical at every shard count**;
//! sharding only changes which thread a group runs on. Per-shard
//! checkpoints commit atomically through a [`Manifest`]
//! (all-or-nothing across shards), and the final per-group selections
//! are merged under the *global* memory budget with the MCKP frontier
//! merge from `isel_core`. [`StatusBoard`]
//! aggregates live counters across shards; `SIGUSR1` or a
//! `{"control":"status"}` line renders them as one JSON status line.
//!
//! # Frontier arbitration
//!
//! The global-budget merge is a *live* subsystem ([`arbiter`]): each
//! group publishes its tuned frontier as epochs complete, the
//! [`Arbiter`] folds changed frontiers incrementally into a maintained
//! [`isel_core::FrontierSet`], and the final merged selection is a cheap
//! read of that state. Interactive `{"control":"whatif","budget":B}` and
//! `{"control":"tenant","table_group":T,"budget":B}` queries — over the
//! socket or in a replayed stream — are answered from the precomputed
//! frontiers without re-running selection.
//!
//! # Multi-process serving
//!
//! Past one process, the same topology splits across process
//! boundaries ([`process`]): a **supervisor** owns the listening
//! socket, the journal, the checkpoint [`Manifest`] and the live
//! [`Arbiter`], and routes events over per-worker stdin pipes (binary
//! frames) to `N` **worker child processes**, each hosting shards with
//! exactly the in-process [`GroupState`] tuning machinery. The
//! supervisor detects a dead worker (pipe EOF, `SIGCHLD`), restores its
//! shards onto a survivor or respawned replacement from the last
//! committed checkpoint generation, and replays the journal tail since
//! that generation — so a `SIGKILL` of any worker at any event position
//! leaves the final merged selection **byte-identical** to a
//! failure-free run (DESIGN.md §16).
//!
//! [`Workload`]: isel_workload::Workload
//! [`IndexPool`]: isel_workload::IndexPool
//! [`Manifest`]: checkpoint::Manifest
//! [`GroupState`]: crate::router

#![warn(missing_docs)]

pub mod arbiter;
pub mod checkpoint;
pub mod config;
pub mod daemon;
pub mod event;
pub mod fault;
pub mod feedback;
pub mod frame;
pub mod journal;
pub mod mmap;
pub mod process;
pub mod queue;
pub mod records;
pub mod router;
pub mod shard;
pub mod socket;
pub mod status;
pub mod tuner;
pub mod window;

pub use arbiter::{
    global_budget, Arbiter, InteractiveRegistry, PendingQuery, PublishedFrontier,
};
pub use checkpoint::{
    shard_file, Checkpoint, GroupCheckpoint, Manifest, ShardCheckpoint, CHECKPOINT_VERSION,
};
pub use config::{CalibrationConfig, DriftThresholds, ServiceConfig};
pub use daemon::{offline_adapt, offline_snapshots, Daemon, OverloadPolicy, ServiceReport};
pub use event::{parse_line, parse_token, Control, InputLine};
pub use fault::{Schedule as FaultSchedule, ENV_SCHEDULE as ENV_FAULT_SCHEDULE};
pub use feedback::{CalCounters, CalSnapshot, FeedbackCheckpoint, GroupFeedback, RatioTracker};
pub use frame::{FrameEncoder, WireItem, FORMAT_VERSION, MAGIC, MAX_PAYLOAD};
pub use journal::{convert, read_journal_bytes, JournalConfig, JournalWriter, TeeReader, WireFormat};
pub use mmap::MappedFile;
pub use process::{run_worker, SupMsg, Supervisor, WorkerMsg};
pub use records::{DecodeDict, Record, RecordIter};
pub use queue::BoundedQueue;
pub use router::{offline_group_adapt, offline_group_snapshots, Router};
pub use shard::{classify_line, LineClass, ShardMap, ShardTagSink};
pub use socket::{run_socket, run_socket_router, run_socket_supervisor};
pub use status::{install_status_signal, take_status_signal, PersistedStatus, StatusBoard};
pub use tuner::{EpochOutcome, TunePolicy, Tuner};
pub use window::EpochWindow;
