//! Unified record stream: JSONL lines and binary frames on one input.
//!
//! [`RecordIter`] reads any `BufRead` and yields [`Record`]s, deciding
//! per record from a single leading byte whether the next bytes are a
//! binary frame ([`crate::frame::MAGIC`], which no UTF-8 line can start
//! with) or a text line. Both the streaming paths (stdin, sockets) and
//! the mmap replay path (`Cursor<&[u8]>` over a mapped journal) run
//! through this one implementation, so a corrupt byte surfaces as an
//! invalid record at the **same deterministic stream position** no
//! matter how the bytes arrived.
//!
//! Corruption never panics and never kills the stream: a frame with a
//! bad version, oversized or truncated length, or checksum mismatch
//! yields one [`Record::Corrupt`] and the reader resyncs at the next
//! [`MAGIC`] byte or just past the next newline. Text lines that are
//! not valid UTF-8 are converted lossily and surface as parse failures
//! downstream instead of silently ending the stream (which is what
//! `BufRead::lines` would do).
//!
//! [`DecodeDict`] is the consumer-side template dictionary: it
//! validates [`WireItem::Define`]s against the schema once — the same
//! checks [`crate::event::parse_line`] applies per line — and
//! pre-builds a frequency-1 [`Query`] per valid template, so resolving
//! a frequency-1 event is an array lookup that allocates nothing.

use crate::event::Control;
use crate::frame::{get_item, WireItem, FORMAT_VERSION, MAGIC, MAX_PAYLOAD};
use isel_workload::wire::crc32;
use isel_workload::{AttrId, Query, QueryKind, Schema, TableId};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::io::BufRead;

/// One record from a mixed-encoding input stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A text line (newline stripped, invalid UTF-8 replaced lossily).
    Line(String),
    /// One decoded item from a valid binary frame.
    Item(WireItem),
    /// An undecodable region: corrupt frame header, checksum mismatch,
    /// or a malformed item inside an otherwise-valid frame. Exactly one
    /// `Corrupt` is emitted per undecodable region.
    Corrupt,
}

/// Iterator over [`Record`]s. Works over any `BufRead`; for mmap replay
/// wrap the mapped bytes in a `std::io::Cursor`.
pub struct RecordIter<R: BufRead> {
    input: R,
    /// Items of the frame currently being drained; `None` marks the
    /// corrupt remainder of a frame whose payload went bad mid-way.
    pending: VecDeque<Option<WireItem>>,
}

impl<R: BufRead> RecordIter<R> {
    /// Wrap an input stream.
    pub fn new(input: R) -> Self {
        Self { input, pending: VecDeque::new() }
    }

    /// Next byte without consuming it; `None` at EOF. I/O errors end
    /// the stream (matching line-based ingestion, which stops at the
    /// first read error).
    fn peek(&mut self) -> Option<u8> {
        match self.input.fill_buf() {
            Ok(buf) => buf.first().copied(),
            Err(_) => None,
        }
    }

    fn read_byte(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.input.consume(1);
        Some(b)
    }

    /// Skip forward to the next plausible record start: the next
    /// [`MAGIC`] byte (left unconsumed) or just past the next newline.
    fn resync(&mut self) {
        while let Some(b) = self.peek() {
            if b == MAGIC {
                return;
            }
            self.input.consume(1);
            if b == b'\n' {
                return;
            }
        }
    }

    /// Decode the frame at the current position (first byte is known to
    /// be [`MAGIC`]) into `pending`. On any header, checksum or payload
    /// error, queues one corrupt marker; when the error leaves the
    /// stream position unknown (bad header, truncation), also resyncs.
    fn read_frame(&mut self) {
        self.input.consume(1); // MAGIC
        match self.try_read_frame() {
            Ok(()) => {}
            Err(resync) => {
                self.pending.push_back(None);
                if resync {
                    self.resync();
                }
            }
        }
    }

    /// `Err(true)` = corrupt with unknown extent (resync needed);
    /// `Err(false)` = corrupt but fully consumed (a checksum mismatch
    /// after reading the declared length — the next record starts right
    /// here, so skipping would eat it).
    fn try_read_frame(&mut self) -> Result<(), bool> {
        if self.read_byte() != Some(FORMAT_VERSION) {
            return Err(true);
        }
        // Varint payload length, byte at a time (it may straddle the
        // underlying reader's buffer boundary).
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(byte) = self.read_byte() else { return Err(true) };
            len |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 28 {
                // > MAX_PAYLOAD needs at most 4 varint bytes; anything
                // longer is corrupt by construction.
                return Err(true);
            }
        }
        let Ok(len) = usize::try_from(len) else { return Err(true) };
        if len > MAX_PAYLOAD {
            return Err(true);
        }
        let mut crc_bytes = [0u8; 4];
        if self.input.read_exact(&mut crc_bytes).is_err() {
            return Err(true);
        }
        let mut payload = vec![0u8; len];
        if self.input.read_exact(&mut payload).is_err() {
            return Err(true);
        }
        if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
            return Err(false);
        }
        let mut pos = 0;
        while pos < payload.len() {
            match get_item(&payload, &mut pos) {
                Some(item) => self.pending.push_back(Some(item)),
                None => {
                    // The frame checksummed clean but an item is
                    // malformed — count the remainder invalid once.
                    self.pending.push_back(None);
                    break;
                }
            }
        }
        Ok(())
    }

    fn read_line(&mut self) -> Option<String> {
        let mut raw = Vec::new();
        match self.input.read_until(b'\n', &mut raw) {
            Ok(0) | Err(_) => None,
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    raw.pop();
                }
                if raw.last() == Some(&b'\r') {
                    raw.pop();
                }
                Some(String::from_utf8_lossy(&raw).into_owned())
            }
        }
    }
}

impl<R: BufRead> Iterator for RecordIter<R> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        loop {
            if let Some(slot) = self.pending.pop_front() {
                return Some(match slot {
                    Some(item) => Record::Item(item),
                    None => Record::Corrupt,
                });
            }
            match self.peek()? {
                MAGIC => self.read_frame(), // refills `pending`; loop
                _ => return self.read_line().map(Record::Line),
            }
        }
    }
}

/// One defined template on the consumer side.
struct TemplateEntry {
    table: u16,
    kind: QueryKind,
    /// Attribute ids in written order (for lossless re-rendering).
    attrs: Vec<u32>,
    /// Pre-built frequency-1 query, `None` if the definition failed
    /// schema validation (events referencing it count as invalid).
    query: Option<Query>,
}

/// Consumer-side template dictionary: validates `Define` items against
/// the schema once, then resolves events by id.
#[derive(Default)]
pub struct DecodeDict {
    templates: Vec<TemplateEntry>,
}

impl DecodeDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of templates defined so far.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no template has been defined.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Register the next template. Returns the assigned id; whether the
    /// definition validated is visible only when an event resolves it
    /// (mirroring how an invalid JSONL line is counted where it occurs,
    /// not where its shape first appeared).
    pub fn define(&mut self, schema: &Schema, table: u16, kind: QueryKind, attrs: Vec<u32>) -> u64 {
        let query = validate_define(schema, table, &attrs)
            .then(|| Query::with_kind(TableId(table), attrs.iter().map(|&a| AttrId(a)).collect(), 1, kind));
        self.templates.push(TemplateEntry { table, kind, attrs, query });
        (self.templates.len() - 1) as u64
    }

    /// Register a template without schema validation, for render-only
    /// consumers (conversion, socket transcoding) that use [`raw`]
    /// and never [`resolve`].
    ///
    /// [`raw`]: Self::raw
    /// [`resolve`]: Self::resolve
    pub fn define_raw(&mut self, table: u16, kind: QueryKind, attrs: Vec<u32>) -> u64 {
        self.templates.push(TemplateEntry { table, kind, attrs, query: None });
        (self.templates.len() - 1) as u64
    }

    /// Table of a defined template (valid or not), for routing.
    pub fn table_of(&self, template: u64) -> Option<u16> {
        usize::try_from(template).ok().and_then(|t| self.templates.get(t)).map(|e| e.table)
    }

    /// Resolve an event to a validated [`Query`]. Frequency-1 events —
    /// the common case — borrow the pre-built query and allocate
    /// nothing. `None` for unknown or schema-invalid templates and for
    /// zero frequencies.
    pub fn resolve(&self, template: u64, frequency: u64) -> Option<Cow<'_, Query>> {
        let entry = self.templates.get(usize::try_from(template).ok()?)?;
        let base = entry.query.as_ref()?;
        if frequency == 1 {
            Some(Cow::Borrowed(base))
        } else if frequency == 0 {
            None
        } else {
            Some(Cow::Owned(Query::with_kind(
                base.table(),
                base.attrs().to_vec(),
                frequency,
                entry.kind,
            )))
        }
    }

    /// Raw shape of a template (written-order attrs), for rendering a
    /// decoded event back to canonical JSONL. Available even for
    /// schema-invalid templates, so conversion needs no schema.
    pub fn raw(&self, template: u64) -> Option<(u16, &[u32], QueryKind)> {
        let e = self.templates.get(usize::try_from(template).ok()?)?;
        Some((e.table, &e.attrs, e.kind))
    }
}

/// The schema checks [`crate::event::parse_line`] applies, on raw ids.
pub(crate) fn validate_define(schema: &Schema, table: u16, attrs: &[u32]) -> bool {
    if table as usize >= schema.tables().len() || attrs.is_empty() {
        return false;
    }
    attrs.iter().all(|&a| {
        (a as usize) < schema.attr_count() && schema.attribute(AttrId(a)).table == TableId(table)
    })
}

/// Convenience: interpret one decoded [`WireItem`] against a dictionary
/// the way [`parse_line`](crate::event::parse_line) interprets a line.
/// `Define`s mutate the dictionary and yield `Ok(None)`; `Tagged`
/// wrappers are transparent (conn/seq are journal metadata, exactly as
/// the JSONL parser ignores those keys).
pub fn interpret<'d>(
    dict: &'d mut DecodeDict,
    schema: &Schema,
    item: &WireItem,
) -> Result<Option<DecodedEvent<'d>>, InvalidTemplate> {
    match item {
        WireItem::Define { table, kind, attrs } => {
            dict.define(schema, *table, *kind, attrs.clone());
            Ok(None)
        }
        WireItem::Event { template, frequency } => match dict.resolve(*template, *frequency) {
            Some(q) => Ok(Some(DecodedEvent::Query(q))),
            None => Err(InvalidTemplate),
        },
        WireItem::Control(c) => Ok(Some(DecodedEvent::Control(*c))),
        WireItem::Raw(bytes) => Ok(Some(DecodedEvent::RawLine(
            String::from_utf8_lossy(bytes).into_owned(),
        ))),
        WireItem::Tagged { item, .. } => interpret(dict, schema, item),
        // Supervisor messages are not events; in an event stream one
        // counts as a single invalid input.
        WireItem::Sup(_) => Err(InvalidTemplate),
    }
}

/// An event referenced a template that was never validly defined —
/// counted as one invalid input, like an unparseable JSONL line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidTemplate;

/// A [`WireItem`] interpreted against the schema and dictionary.
pub enum DecodedEvent<'d> {
    /// A validated query (borrowed for frequency-1 events).
    Query(Cow<'d, Query>),
    /// A control command.
    Control(Control),
    /// A raw line to be fed through the JSONL parser.
    RawLine(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameEncoder;
    use isel_workload::SchemaBuilder;
    use std::io::Cursor;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let t0 = b.table("t0", 1_000);
        b.attribute(t0, "a", 10, 4);
        b.attribute(t0, "b", 10, 4);
        let t1 = b.table("t1", 1_000);
        b.attribute(t1, "c", 10, 4);
        b.finish()
    }

    fn records(bytes: &[u8]) -> Vec<Record> {
        RecordIter::new(Cursor::new(bytes)).collect()
    }

    #[test]
    fn mixed_text_and_frames_interleave() {
        let mut enc = FrameEncoder::new();
        enc.push_query(0, &[0, 1], 1, QueryKind::Select);
        let mut bytes = b"{\"table\":0,\"attrs\":[0]}\n".to_vec();
        enc.flush_into(&mut bytes);
        bytes.extend_from_slice(b"tail line\n");
        let recs = records(&bytes);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0], Record::Line("{\"table\":0,\"attrs\":[0]}".into()));
        assert!(matches!(recs[1], Record::Item(WireItem::Define { .. })));
        assert!(matches!(recs[2], Record::Item(WireItem::Event { template: 0, frequency: 1 })));
        assert_eq!(recs[3], Record::Line("tail line".into()));
    }

    #[test]
    fn final_line_without_newline_is_kept() {
        assert_eq!(records(b"abc"), vec![Record::Line("abc".into())]);
        assert_eq!(records(b"abc\r\n"), vec![Record::Line("abc".into())]);
    }

    #[test]
    fn corrupt_frame_resyncs_to_next_record() {
        let mut good = Vec::new();
        let mut enc = FrameEncoder::new();
        enc.push_control(Control::Status, None);
        enc.flush_into(&mut good);
        // Bad version byte, then garbage, then newline, then a good
        // frame and a text line.
        let mut bytes = vec![MAGIC, 0x7F, 0xde, 0xad, b'\n'];
        bytes.extend_from_slice(&good);
        bytes.extend_from_slice(b"after\n");
        let recs = records(&bytes);
        assert_eq!(recs[0], Record::Corrupt);
        assert!(matches!(recs[1], Record::Item(WireItem::Control(_))));
        assert_eq!(recs[2], Record::Line("after".into()));
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn checksum_mismatch_is_one_corrupt_record() {
        let mut bytes = Vec::new();
        let mut enc = FrameEncoder::new();
        enc.push_query(0, &[0], 1, QueryKind::Select);
        enc.flush_into(&mut bytes);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a payload bit
        bytes.extend_from_slice(b"next\n");
        let recs = records(&bytes);
        assert_eq!(recs[0], Record::Corrupt);
        assert_eq!(recs[1], Record::Line("next".into()));
    }

    #[test]
    fn truncated_frame_at_eof_is_corrupt() {
        let mut bytes = Vec::new();
        let mut enc = FrameEncoder::new();
        enc.push_query(0, &[0], 7, QueryKind::Update);
        enc.flush_into(&mut bytes);
        for cut in 1..bytes.len() {
            let recs = records(&bytes[..cut]);
            assert_eq!(recs, vec![Record::Corrupt], "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_quickly() {
        // Length prefix claims ~2^34 bytes; decoder must not allocate.
        let bytes = [MAGIC, FORMAT_VERSION, 0xFF, 0xFF, 0xFF, 0xFF, 0x3F];
        assert_eq!(records(&bytes), vec![Record::Corrupt]);
    }

    #[test]
    fn dict_validates_and_resolves() {
        let s = schema();
        let mut d = DecodeDict::new();
        let ok = d.define(&s, 0, QueryKind::Select, vec![1, 0]);
        let bad_table = d.define(&s, 9, QueryKind::Select, vec![0]);
        let cross = d.define(&s, 0, QueryKind::Select, vec![2]);
        assert_eq!((ok, bad_table, cross), (0, 1, 2));
        let q = d.resolve(0, 1).expect("valid template");
        assert!(matches!(q, Cow::Borrowed(_)), "frequency-1 borrows");
        assert_eq!(q.frequency(), 1);
        let q5 = d.resolve(0, 5).unwrap();
        assert_eq!(q5.frequency(), 5);
        assert!(d.resolve(1, 1).is_none(), "unknown table");
        assert!(d.resolve(2, 1).is_none(), "cross-table attr");
        assert!(d.resolve(7, 1).is_none(), "never defined");
        assert!(d.resolve(0, 0).is_none(), "zero frequency");
        assert_eq!(d.table_of(1), Some(9), "invalid templates still route");
        assert_eq!(d.raw(2), Some((0u16, &[2u32][..], QueryKind::Select)));
    }
}
