//! Journal writing (both encodings), segment rotation, and the
//! lossless `journal convert` transcoder.
//!
//! # Formats
//!
//! A journal is either JSONL (one tagged line per event, the PR 5
//! format) or binary frames (DESIGN.md §14). [`JournalWriter`] hides
//! the difference behind one `write_line` API: in binary mode each
//! incoming line is parsed into its canonical form and encoded as a
//! dictionary-compressed item (one frame per line, so the journal is
//! readable up to the last flush), with non-canonical lines carried as
//! [`WireItem::Raw`] so nothing is ever lost.
//!
//! # Rotation
//!
//! With `max_bytes` set, the journal becomes a *segment manifest* at
//! the configured path plus data segments `<path>.seg-NNNNNN` beside
//! it. The manifest — a single JSON object starting with
//! `{"journal"` so readers can tell it from event data — lists the
//! **closed** segments and is rewritten atomically (tmp + rename) at
//! each rollover, mirroring the checkpoint [`crate::checkpoint::Manifest`]
//! commit discipline. The currently-open segment is by construction
//! `.seg-<len(closed)>`; after a crash, [`read_journal_bytes`] probes
//! for exactly that file and appends its contents, so no acknowledged
//! event is lost even mid-segment. Binary segments share one template
//! dictionary across the whole journal (readers replay segments
//! concatenated, so writer and reader ids must stay aligned).
//!
//! [`WireItem::Raw`]: crate::frame::WireItem::Raw

use crate::frame::{
    parse_canonical, render_control, render_query, CanonicalBody, FrameEncoder, WireItem,
};
use crate::records::{DecodeDict, Record, RecordIter};
use std::fs::File;
use std::io::{BufRead, BufWriter, Cursor, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Event stream encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// One JSON object per line (human-readable, the default).
    Jsonl,
    /// Checksummed binary frames with dictionary-compressed events.
    Binary,
}

impl FromStr for WireFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" => Ok(Self::Jsonl),
            "binary" => Ok(Self::Binary),
            other => Err(format!("unknown format {other:?} (expected jsonl or binary)")),
        }
    }
}

impl WireFormat {
    /// Name as accepted by `--format`.
    pub fn name(self) -> &'static str {
        match self {
            Self::Jsonl => "jsonl",
            Self::Binary => "binary",
        }
    }
}

/// Where and how a journal is written.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Journal path (the manifest path when rotation is on).
    pub path: PathBuf,
    /// Encoding of journal entries.
    pub format: WireFormat,
    /// Segment size that triggers rollover; `None` writes one file.
    pub max_bytes: Option<u64>,
}

/// Splice `{"conn":C,"seq":S,` into a JSON object line so the original
/// fields survive verbatim; non-JSON lines pass through unchanged.
/// This is the canonical tag shape both journal encodings reproduce.
pub fn tag_line(conn: u64, seq: u64, line: &str) -> String {
    match line.strip_prefix('{') {
        Some(rest) => {
            let rest = rest.trim_start();
            if rest == "}" {
                format!("{{\"conn\":{conn},\"seq\":{seq}}}")
            } else {
                format!("{{\"conn\":{conn},\"seq\":{seq},{rest}")
            }
        }
        None => line.to_string(),
    }
}

/// Manifest prefix — no event line or binary frame can start with it.
const MANIFEST_PREFIX: &str = "{\"journal\"";

/// Whether `bytes` open with the rotation-manifest prefix — i.e. the
/// file is a segment manifest, not event data in either encoding.
pub fn is_manifest(bytes: &[u8]) -> bool {
    bytes.starts_with(MANIFEST_PREFIX.as_bytes())
}

fn segment_path(base: &Path, index: usize) -> PathBuf {
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".seg-{index:06}"));
    base.with_file_name(name)
}

fn manifest_json(format: WireFormat, segments: usize) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "{MANIFEST_PREFIX}:{{\"version\":1,\"format\":\"{}\",\"segments\":[",
        format.name()
    );
    for i in 0..segments {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{i}");
    }
    s.push_str("]}}");
    s
}

/// An append-only event journal in either encoding, with optional
/// segment rotation. Write errors are counted, never propagated — a
/// full disk must not kill the daemon (the same posture as dropped
/// events: visible in counters, not fatal).
pub struct JournalWriter {
    config: JournalConfig,
    out: BufWriter<File>,
    encoder: Option<FrameEncoder>,
    closed_segments: usize,
    seg_bytes: u64,
    errors: u64,
}

impl JournalWriter {
    /// Create the journal (truncating any previous one). With rotation,
    /// writes the initial empty manifest and opens segment 0.
    pub fn create(config: JournalConfig) -> Result<Self, String> {
        let first = if config.max_bytes.is_some() {
            write_manifest(&config.path, config.format, 0)?;
            segment_path(&config.path, 0)
        } else {
            config.path.clone()
        };
        let out = BufWriter::new(
            File::create(&first).map_err(|e| format!("cannot create {}: {e}", first.display()))?,
        );
        let encoder = matches!(config.format, WireFormat::Binary).then(FrameEncoder::new);
        Ok(Self { config, out, encoder, closed_segments: 0, seg_bytes: 0, errors: 0 })
    }

    /// Append one event line tagged with its connection/sequence ids.
    pub fn write_line(&mut self, conn: u64, seq: u64, line: &str) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        self.roll_if_needed();
        match &mut self.encoder {
            None => {
                let tagged = tag_line(conn, seq, trimmed);
                if writeln!(self.out, "{tagged}").is_err() {
                    self.errors += 1;
                }
                self.seg_bytes += tagged.len() as u64 + 1;
            }
            Some(enc) => {
                match parse_canonical(trimmed) {
                    // Journal tags always win over tags already present
                    // in the line (the JSONL splice has the same
                    // effect: the daemon's ids come first).
                    Some((_, CanonicalBody::Query { table, attrs, frequency, kind })) => {
                        enc.push_tagged_query(conn, seq, table, &attrs, frequency, kind)
                    }
                    Some((_, CanonicalBody::Control(c))) => {
                        enc.push_control(c, Some((conn, seq)))
                    }
                    None => enc.push_raw(tag_line(conn, seq, trimmed).as_bytes()),
                }
                let mut frame = Vec::new();
                enc.flush_into(&mut frame);
                if self.out.write_all(&frame).is_err() {
                    self.errors += 1;
                }
                self.seg_bytes += frame.len() as u64;
            }
        }
    }

    /// Append a raw status-reply line (JSONL journals only record these
    /// as-is; binary journals carry them as raw items).
    pub fn write_raw_line(&mut self, line: &str) {
        self.roll_if_needed();
        match &mut self.encoder {
            None => {
                if writeln!(self.out, "{line}").is_err() {
                    self.errors += 1;
                }
                self.seg_bytes += line.len() as u64 + 1;
            }
            Some(enc) => {
                enc.push_raw(line.as_bytes());
                let mut frame = Vec::new();
                enc.flush_into(&mut frame);
                if self.out.write_all(&frame).is_err() {
                    self.errors += 1;
                }
                self.seg_bytes += frame.len() as u64;
            }
        }
    }

    fn roll_if_needed(&mut self) {
        let Some(max) = self.config.max_bytes else { return };
        if self.seg_bytes < max {
            return;
        }
        // Rotation is a commit point: manifest rewrite + new segment.
        // A kill here leaves the just-closed segment as the probe tail.
        if crate::fault::fire(crate::fault::JOURNAL_ROTATE, 0).is_err() {
            self.errors += 1;
        }
        if self.out.flush().is_err() {
            self.errors += 1;
        }
        self.closed_segments += 1;
        if write_manifest(&self.config.path, self.config.format, self.closed_segments).is_err() {
            self.errors += 1;
        }
        let next = segment_path(&self.config.path, self.closed_segments);
        match File::create(&next) {
            Ok(f) => {
                self.out = BufWriter::new(f);
                self.seg_bytes = 0;
                // The template dictionary deliberately carries across
                // segments: a reader replays them concatenated, and its
                // ids must stay aligned with the writer's.
            }
            Err(_) => self.errors += 1,
        }
    }

    /// Count of swallowed write errors (0 on a healthy disk).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flush buffered bytes to the OS (entries stay readable while the
    /// journal remains open).
    pub fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.errors += 1;
        }
    }

    /// Flush and seal the journal. With rotation, commits the final
    /// segment into the manifest.
    pub fn finish(mut self) -> u64 {
        if self.out.flush().is_err() {
            self.errors += 1;
        }
        if self.config.max_bytes.is_some() && self.seg_bytes > 0 {
            self.closed_segments += 1;
            if write_manifest(&self.config.path, self.config.format, self.closed_segments).is_err()
            {
                self.errors += 1;
            }
        }
        self.errors
    }

    /// Flush data but skip the final manifest commit, leaving the open
    /// segment uncommitted — exactly the on-disk state after a crash
    /// mid-segment. Test hook for the kill/restore suite.
    #[doc(hidden)]
    pub fn abandon(mut self) {
        let _ = self.out.flush();
    }
}

/// A [`BufRead`] adapter that appends every **consumed** byte of the
/// inner reader to a file — the supervisor's write-ahead input journal
/// (DESIGN.md §18).
///
/// The tee happens in [`BufRead::consume`], *before* the bytes are
/// released from the inner buffer: any byte a `read_until`/`read_line`
/// caller has copied out was journaled first, so after a crash the
/// journal is always a superset of what the supervisor routed. (It may
/// run a partial line past the routed prefix — the restart replays the
/// journal and resumes the live stream from byte `journal.len()`, so
/// torn lines reassemble across the boundary.)
///
/// Write errors are counted, never propagated, matching
/// [`JournalWriter`]'s full-disk posture.
pub struct TeeReader<R: BufRead> {
    inner: R,
    out: File,
    errors: u64,
}

impl<R: BufRead> TeeReader<R> {
    /// Tee `inner` into the file at `path`, appending (the restart path
    /// re-opens the prior incarnation's journal and continues it).
    pub fn create(inner: R, path: &Path) -> Result<Self, String> {
        let out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok(Self { inner, out, errors: 0 })
    }

    /// Count of swallowed journal write errors (0 on a healthy disk).
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl<R: BufRead> Read for TeeReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let avail = self.fill_buf()?;
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: BufRead> BufRead for TeeReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        if amt > 0 {
            // fill_buf on a filled buffer is idempotent: this re-reads
            // the exact bytes the caller is releasing.
            if let Ok(buf) = self.inner.fill_buf() {
                let n = amt.min(buf.len());
                if crate::fault::fire(crate::fault::JOURNAL_APPEND, 0).is_err() {
                    self.errors += 1;
                }
                if self.out.write_all(&buf[..n]).is_err() || self.out.flush().is_err() {
                    self.errors += 1;
                }
            }
        }
        self.inner.consume(amt);
    }
}

fn write_manifest(path: &Path, format: WireFormat, segments: usize) -> Result<(), String> {
    let tmp = path.with_extension("manifest.tmp");
    std::fs::write(&tmp, manifest_json(format, segments))
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot commit {}: {e}", path.display()))
}

#[derive(serde::Deserialize)]
struct ManifestFile {
    journal: ManifestBody,
}

#[derive(serde::Deserialize)]
struct ManifestBody {
    version: u32,
    #[allow(dead_code)]
    format: String,
    segments: Vec<u64>,
}

/// Read a journal back as one contiguous byte stream, resolving a
/// segment manifest if `path` holds one: all committed segments in
/// order, plus the uncommitted tail segment a crash may have left
/// behind. Plain (unrotated) journals are returned as-is.
pub fn read_journal_bytes(path: &Path) -> Result<Vec<u8>, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !is_manifest(&bytes) {
        return Ok(bytes);
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|e| format!("bad journal manifest {}: {e}", path.display()))?;
    let manifest: ManifestFile = serde_json::from_str(text)
        .map_err(|e| format!("bad journal manifest {}: {e}", path.display()))?;
    if manifest.journal.version != 1 {
        return Err(format!(
            "unsupported journal manifest version {}",
            manifest.journal.version
        ));
    }
    let mut all = Vec::new();
    for &i in &manifest.journal.segments {
        let seg = segment_path(path, i as usize);
        let seg_bytes =
            std::fs::read(&seg).map_err(|e| format!("cannot read {}: {e}", seg.display()))?;
        all.extend_from_slice(&seg_bytes);
    }
    // The segment after the last committed one may exist if the writer
    // died mid-segment; its contents were acknowledged, so replay them.
    let tail = segment_path(path, manifest.journal.segments.len());
    if let Ok(seg_bytes) = std::fs::read(&tail) {
        all.extend_from_slice(&seg_bytes);
    }
    Ok(all)
}

/// Transcode an event stream between encodings, losslessly for
/// newline-terminated input. JSONL → binary maps every canonical line
/// to dictionary items and every other line to a raw item; binary →
/// JSONL renders items back to their canonical text. Corrupt binary
/// regions are dropped (they have no faithful text form); conversion
/// needs no schema.
pub fn convert(input: &[u8], to: WireFormat) -> Vec<u8> {
    // Normalize to lines first — this *is* the binary→jsonl direction.
    let mut dict = DecodeDict::new();
    let mut lines: Vec<String> = Vec::new();
    for record in RecordIter::new(Cursor::new(input)) {
        match record {
            Record::Line(l) => lines.push(l),
            Record::Corrupt => {}
            Record::Item(item) => {
                if let Some(line) = render_item(&mut dict, &item, None) {
                    lines.push(line);
                }
            }
        }
    }
    match to {
        WireFormat::Jsonl => {
            let mut out = Vec::new();
            for l in &lines {
                out.extend_from_slice(l.as_bytes());
                out.push(b'\n');
            }
            out
        }
        WireFormat::Binary => {
            let mut enc = FrameEncoder::new();
            let mut out = Vec::new();
            for l in &lines {
                match parse_canonical(l) {
                    Some((tag, CanonicalBody::Query { table, attrs, frequency, kind })) => {
                        match tag {
                            Some((c, s)) => {
                                enc.push_tagged_query(c, s, table, &attrs, frequency, kind)
                            }
                            None => enc.push_query(table, &attrs, frequency, kind),
                        }
                    }
                    Some((tag, CanonicalBody::Control(c))) => enc.push_control(c, tag),
                    None => enc.push_raw(l.as_bytes()),
                }
                enc.auto_flush_into(&mut out);
            }
            enc.flush_into(&mut out);
            out
        }
    }
}

/// Render one decoded item to its canonical line. `Define`s update the
/// dictionary (render-only, no schema involved) and render nothing;
/// events referencing unknown templates render nothing (there is no
/// faithful text form).
fn render_item(dict: &mut DecodeDict, item: &WireItem, tag: Option<(u64, u64)>) -> Option<String> {
    match item {
        WireItem::Define { table, kind, attrs } => {
            dict.define_raw(*table, *kind, attrs.clone());
            None
        }
        WireItem::Event { template, frequency } => {
            let (table, attrs, kind) = dict.raw(*template)?;
            Some(render_query(tag, table, attrs, *frequency, kind))
        }
        WireItem::Control(c) => Some(render_control(tag, *c)),
        // Supervisor-pipe frames never belong in a journal; they have
        // no canonical text form.
        WireItem::Sup(_) => None,
        WireItem::Raw(bytes) => Some(String::from_utf8_lossy(bytes).into_owned()),
        WireItem::Tagged { conn, seq, item } => render_item(dict, item, Some((*conn, *seq))),
    }
}

/// Render a decoded item for consumers outside this module (the socket
/// path renders binary input back to canonical lines before ingesting).
pub fn render_item_line(dict: &mut DecodeDict, item: &WireItem) -> Option<String> {
    render_item(dict, item, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("isel-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    const SAMPLE: &str = "{\"table\":0,\"attrs\":[0,1]}\n\
        {\"table\":0,\"attrs\":[0,1]}\n\
        {\"table\":1,\"attrs\":[2],\"frequency\":9,\"kind\":\"Update\"}\n\
        {\"conn\":1,\"seq\":2,\"table\":0,\"attrs\":[1]}\n\
        not json at all\n\
        {\"control\":\"checkpoint\"}\n\
        {\"table\":0,\"attrs\":[0,1],\"frequency\":2}\n";

    #[test]
    fn convert_round_trips_losslessly() {
        let binary = convert(SAMPLE.as_bytes(), WireFormat::Binary);
        assert!(binary.len() < SAMPLE.len());
        let back = convert(&binary, WireFormat::Jsonl);
        assert_eq!(std::str::from_utf8(&back).unwrap(), SAMPLE);
        // jsonl→jsonl and binary→binary are identities too.
        assert_eq!(convert(SAMPLE.as_bytes(), WireFormat::Jsonl), SAMPLE.as_bytes());
        assert_eq!(convert(&binary, WireFormat::Binary), binary);
    }

    #[test]
    fn convert_compresses_repetitive_streams_hard() {
        let mut input = String::new();
        for _ in 0..1_000 {
            input.push_str("{\"table\":2,\"attrs\":[6,7,8]}\n");
        }
        let binary = convert(input.as_bytes(), WireFormat::Binary);
        assert!(
            binary.len() * 10 <= input.len(),
            "expected ≥10× compression, got {} vs {}",
            binary.len(),
            input.len()
        );
        assert_eq!(convert(&binary, WireFormat::Jsonl), input.as_bytes());
    }

    #[test]
    fn tag_line_splices_like_the_socket_journal() {
        assert_eq!(tag_line(3, 7, "{\"a\":1}"), "{\"conn\":3,\"seq\":7,\"a\":1}");
        assert_eq!(tag_line(3, 7, "{}"), "{\"conn\":3,\"seq\":7}");
        assert_eq!(tag_line(3, 7, "plain"), "plain");
    }

    #[test]
    fn unrotated_journals_match_the_legacy_shape() {
        let path = tmp("plain.jsonl");
        let mut w = JournalWriter::create(JournalConfig {
            path: path.clone(),
            format: WireFormat::Jsonl,
            max_bytes: None,
        })
        .unwrap();
        w.write_line(1, 1, "{\"table\":0,\"attrs\":[0]}");
        w.write_line(1, 2, "garbage");
        assert_eq!(w.finish(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"conn\":1,\"seq\":1,\"table\":0,\"attrs\":[0]}\ngarbage\n");
    }

    #[test]
    fn rotation_commits_segments_and_survives_abandon() {
        for format in [WireFormat::Jsonl, WireFormat::Binary] {
            let path = tmp(&format!("rot-{}.j", format.name()));
            let mut w = JournalWriter::create(JournalConfig {
                path: path.clone(),
                format,
                max_bytes: Some(64),
            })
            .unwrap();
            let mut reference = Vec::new();
            for seq in 0..20u64 {
                let line = format!("{{\"table\":0,\"attrs\":[{}]}}", seq % 3);
                w.write_line(1, seq + 1, &line);
                reference.push(tag_line(1, seq + 1, &line));
            }
            // Abandon mid-segment: manifest lists only closed segments.
            w.abandon();
            let manifest = std::fs::read_to_string(&path).unwrap();
            assert!(manifest.starts_with(MANIFEST_PREFIX), "{manifest}");
            let bytes = read_journal_bytes(&path).unwrap();
            let text = convert(&bytes, WireFormat::Jsonl);
            let got: Vec<String> =
                std::str::from_utf8(&text).unwrap().lines().map(String::from).collect();
            assert_eq!(got, reference, "format {:?}", format);
        }
    }

    #[test]
    fn tee_reader_journals_exactly_the_consumed_bytes() {
        let path = tmp("tee.log");
        let _ = std::fs::remove_file(&path);
        let input = b"{\"table\":0,\"attrs\":[0]}\nsecond line\npartial";
        let mut tee = TeeReader::create(Cursor::new(&input[..]), &path).unwrap();
        let mut line = Vec::new();
        tee.read_until(b'\n', &mut line).unwrap();
        assert_eq!(line, b"{\"table\":0,\"attrs\":[0]}\n");
        // Consumed bytes are on disk before the caller acts on them.
        assert_eq!(std::fs::read(&path).unwrap(), line);
        let mut rest = Vec::new();
        tee.read_to_end(&mut rest).unwrap();
        assert_eq!(tee.errors(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), input, "journal holds the full stream");

        // A second incarnation appends after the prior journal.
        let mut tee = TeeReader::create(Cursor::new(&b" tail\n"[..]), &path).unwrap();
        let mut all = Vec::new();
        tee.read_to_end(&mut all).unwrap();
        let full = std::fs::read(&path).unwrap();
        assert!(full.ends_with(b"partial tail\n"), "torn line reassembles across restarts");
    }

    #[test]
    fn binary_journal_lines_render_back_tagged() {
        let path = tmp("bin.j");
        let mut w = JournalWriter::create(JournalConfig {
            path: path.clone(),
            format: WireFormat::Binary,
            max_bytes: None,
        })
        .unwrap();
        w.write_line(2, 1, "{\"table\":1,\"attrs\":[2],\"frequency\":9}");
        w.write_line(2, 2, "{\"control\":\"status\"}");
        w.write_raw_line("{\"status\":{\"shards\":1}}");
        assert_eq!(w.finish(), 0);
        let bytes = std::fs::read(&path).unwrap();
        let text = convert(&bytes, WireFormat::Jsonl);
        assert_eq!(
            std::str::from_utf8(&text).unwrap(),
            "{\"conn\":2,\"seq\":1,\"table\":1,\"attrs\":[2],\"frequency\":9}\n\
             {\"conn\":2,\"seq\":2,\"control\":\"status\"}\n\
             {\"status\":{\"shards\":1}}\n"
        );
    }
}
