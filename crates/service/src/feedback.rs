//! Observed-cost feedback: calibration tracking and the gated
//! deployment loop (DESIGN.md §17).
//!
//! The estimator stack the tuner plans against is a *model* of the
//! database; `dbsim::measure`-style probes report what executions
//! actually cost. This module closes the loop in three pieces:
//!
//! 1. [`RatioTracker`] — per-template statistics of observed execution
//!    cost, folded with deterministic exponential forgetting. Garbage
//!    probes (non-finite or non-positive costs) are counted and
//!    dropped; the tracker never panics and never poisons its state.
//! 2. Calibrated tuning (`tune_group`) — warm templates become
//!    [`TemplateProbe`]s, compiled against the epoch snapshot into a
//!    [`RatioTable`], and the tuner plans through a
//!    [`CalibratedWhatIf`] stack. With calibration disabled the
//!    function early-returns into the plain [`Tuner::tune`] path, so
//!    selections are bit-identical to a build without the subsystem.
//! 3. The deployment gate — a calibrated re-selection that *changes*
//!    the selection is not trusted immediately: it becomes a candidate
//!    on probation against the previous incumbent. Each following
//!    epoch compares the candidate's calibrated workload cost against
//!    the incumbent's under the same estimator; a candidate that stays
//!    inside the safety envelope for `probation_epochs` consecutive
//!    epochs is promoted, while an envelope violation rolls the group
//!    back to its last-good checkpoint — the same byte-level
//!    [`GroupCheckpoint`] restore path the failover machinery uses, so
//!    a rollback is indistinguishable from a crash-recovery restore.
//!
//! All counters aggregate into [`CalSnapshot`] (the serializable
//! answer of the `{"control":"calibration"}` in-band query and the
//! `calibration` section of the status line), with the invariant
//! `opened == promoted + rolled_back + in_flight`.

use crate::checkpoint::GroupCheckpoint;
use crate::config::ServiceConfig;
use crate::event::ObservedEvent;
use crate::tuner::{DeployNote, EpochOutcome, Tuner};
use crate::window::{kind_rank, rank_kind, EpochWindow};
use isel_core::selection::Selection;
use isel_core::trace::{Trace, TraceEvent};
use isel_core::Parallelism;
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, CalibratedWhatIf, RatioTable, TemplateProbe};
use isel_workload::{Index, Schema, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of ratio-histogram buckets: bucket `i` counts applied ratios
/// in `[2^(i-4), 2^(i-3))`, so bucket 3 is `[1/2, 1)`, bucket 4 is
/// `[1, 2)`, and the ends absorb everything beyond `1/16`× / `16`×.
pub const HIST_BUCKETS: usize = 8;

/// Histogram bucket for one applied ratio (see [`HIST_BUCKETS`]).
pub fn ratio_bucket(ratio: f64) -> usize {
    (ratio.log2().floor() as i64 + 4).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

/// Identity of one probed template: query kind rank, sorted selected
/// attributes, and optionally the access-path index's attributes.
/// `Ord` so every iteration over tracker state is deterministic.
type ProbeKey = (u8, Vec<u32>, Option<Vec<u32>>);

#[derive(Clone, Debug, PartialEq)]
struct Stat {
    sum_log: f64,
    weight: f64,
    count: u64,
}

/// Decayed per-template observed-cost statistics.
///
/// Each accepted probe folds into its template's geometric running
/// mean: `weight ← weight·decay + 1`, `sum_log ← sum_log·decay +
/// ln(cost)`, giving `observed_mean = exp(sum_log / weight)` — an
/// exponentially-forgetting geometric mean, which matches the
/// multiplicative nature of estimate/observed ratios. A template is
/// *warm* once it has accumulated `min_probes` accepted probes.
#[derive(Clone, Debug)]
pub struct RatioTracker {
    decay: f64,
    min_probes: u64,
    stats: BTreeMap<ProbeKey, Stat>,
    probes: u64,
    rejected: u64,
}

impl RatioTracker {
    /// An empty tracker with the given forgetting factor and warm-up
    /// threshold (see [`crate::config::CalibrationConfig`]).
    pub fn new(decay: f64, min_probes: u64) -> Self {
        Self { decay, min_probes, stats: BTreeMap::new(), probes: 0, rejected: 0 }
    }

    /// Accepted probes folded in so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes rejected (non-finite or non-positive cost) so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Distinct templates with at least one accepted probe.
    pub fn templates(&self) -> usize {
        self.stats.len()
    }

    /// Fold one observed-cost event in. Returns whether the probe was
    /// accepted; a rejected probe only bumps the rejection counter —
    /// every ratio the tracker will ever produce is unaffected.
    pub fn observe(&mut self, event: &ObservedEvent) -> bool {
        if !event.cost.is_finite() || event.cost <= 0.0 {
            self.rejected += 1;
            return false;
        }
        let key: ProbeKey = (
            kind_rank(event.query.kind()),
            event.query.attrs().iter().map(|a| a.0).collect(),
            event.index.as_ref().map(|attrs| attrs.iter().map(|a| a.0).collect()),
        );
        let stat = self.stats.entry(key).or_insert(Stat { sum_log: 0.0, weight: 0.0, count: 0 });
        stat.weight = stat.weight * self.decay + 1.0;
        stat.sum_log = stat.sum_log * self.decay + event.cost.ln();
        stat.count += 1;
        self.probes += 1;
        true
    }

    /// The warm templates as calibration probes, in deterministic
    /// (key-sorted) order.
    pub fn warm_probes(&self) -> Vec<TemplateProbe> {
        self.stats
            .iter()
            .filter(|(_, s)| s.count >= self.min_probes)
            .filter_map(|((rank, attrs, index), s)| {
                let kind = rank_kind(*rank).ok()?;
                Some(TemplateProbe {
                    kind,
                    attrs: attrs.iter().copied().map(isel_workload::AttrId).collect(),
                    index: index
                        .as_ref()
                        .map(|ix| ix.iter().copied().map(isel_workload::AttrId).collect()),
                    observed_mean: (s.sum_log / s.weight).exp(),
                })
            })
            .collect()
    }
}

/// One candidate selection on probation against its incumbent.
#[derive(Clone, Debug)]
struct Probation {
    /// Selection that was in force when the candidate was opened.
    incumbent: Selection,
    /// Epoch the candidate was opened at.
    opened_epoch: u64,
    /// Consecutive in-envelope epochs survived so far.
    survived: u64,
}

/// Per-group feedback state: the ratio tracker plus the deployment
/// gate's counters, probation record and last-good checkpoint.
#[derive(Debug, Default)]
pub struct GroupFeedback {
    tracker: Option<RatioTracker>,
    applied: u64,
    hist: [u64; HIST_BUCKETS],
    opened: u64,
    promoted: u64,
    rolled_back: u64,
    last_good: Option<String>,
    probation: Option<Probation>,
}

impl GroupFeedback {
    /// Fresh feedback state for one group under `config`.
    pub fn new(config: &ServiceConfig) -> Self {
        let cal = &config.calibration;
        Self {
            tracker: Some(RatioTracker::new(cal.decay, cal.min_probes)),
            ..Self::default()
        }
    }

    fn tracker_mut(&mut self, config: &ServiceConfig) -> &mut RatioTracker {
        let cal = &config.calibration;
        self.tracker
            .get_or_insert_with(|| RatioTracker::new(cal.decay, cal.min_probes))
    }

    /// Fold one observed-cost probe in, emitting the
    /// [`TraceEvent::ObservedCost`] record and mirroring the counters
    /// into `cal` when attached. Returns whether the probe was
    /// accepted.
    pub fn observe(
        &mut self,
        config: &ServiceConfig,
        event: &ObservedEvent,
        cal: Option<&CalCounters>,
        trace: Trace<'_>,
    ) -> bool {
        let accepted = self.tracker_mut(config).observe(event);
        if let Some(c) = cal {
            if accepted {
                c.probes.fetch_add(1, Ordering::Relaxed);
            } else {
                c.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        let table = event.query.table().0;
        let cost = event.cost;
        trace.emit(|| TraceEvent::ObservedCost { table, cost, accepted });
        accepted
    }

    /// Current counters as a serializable snapshot (probation state and
    /// last-good bytes are checkpoint concerns, not counters).
    pub fn snapshot(&self) -> CalSnapshot {
        CalSnapshot {
            probes: self.tracker.as_ref().map_or(0, RatioTracker::probes),
            rejected: self.tracker.as_ref().map_or(0, RatioTracker::rejected),
            applied: self.applied,
            hist: self.hist.to_vec(),
            opened: self.opened,
            promoted: self.promoted,
            rolled_back: self.rolled_back,
        }
    }

    /// Serialize for a checkpoint.
    pub fn save(&self) -> FeedbackCheckpoint {
        let (stats, probes, rejected) = match &self.tracker {
            Some(t) => (
                t.stats
                    .iter()
                    .map(|((kind, attrs, index), s)| SavedStat {
                        kind: *kind,
                        attrs: attrs.clone(),
                        index: index.clone(),
                        sum_log: s.sum_log,
                        weight: s.weight,
                        count: s.count,
                    })
                    .collect(),
                t.probes,
                t.rejected,
            ),
            None => (Vec::new(), 0, 0),
        };
        FeedbackCheckpoint {
            stats,
            probes,
            rejected,
            applied: self.applied,
            hist: self.hist.to_vec(),
            opened: self.opened,
            promoted: self.promoted,
            rolled_back: self.rolled_back,
            last_good: self.last_good.clone(),
            probation: self.probation.as_ref().map(|p| SavedProbation {
                incumbent: p
                    .incumbent
                    .indexes()
                    .iter()
                    .map(|k| k.attrs().iter().map(|a| a.0).collect())
                    .collect(),
                opened_epoch: p.opened_epoch,
                survived: p.survived,
            }),
        }
    }

    /// Rebuild feedback state from a checkpoint under `config`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry (unknown
    /// kind rank, empty or duplicated index attribute list).
    pub fn load(saved: &FeedbackCheckpoint, config: &ServiceConfig) -> Result<Self, String> {
        let cal = &config.calibration;
        let mut tracker = RatioTracker::new(cal.decay, cal.min_probes);
        for s in &saved.stats {
            rank_kind(s.kind)?;
            tracker.stats.insert(
                (s.kind, s.attrs.clone(), s.index.clone()),
                Stat { sum_log: s.sum_log, weight: s.weight, count: s.count },
            );
        }
        tracker.probes = saved.probes;
        tracker.rejected = saved.rejected;
        let mut hist = [0u64; HIST_BUCKETS];
        for (dst, src) in hist.iter_mut().zip(&saved.hist) {
            *dst = *src;
        }
        let probation = saved
            .probation
            .as_ref()
            .map(|p| -> Result<Probation, String> {
                let indexes: Vec<Index> = p
                    .incumbent
                    .iter()
                    .map(|attrs| {
                        if attrs.is_empty() {
                            return Err("probation incumbent has an empty index".into());
                        }
                        Ok(Index::new(
                            attrs.iter().copied().map(isel_workload::AttrId).collect(),
                        ))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Probation {
                    incumbent: Selection::from_indexes(indexes),
                    opened_epoch: p.opened_epoch,
                    survived: p.survived,
                })
            })
            .transpose()?;
        Ok(Self {
            tracker: Some(tracker),
            applied: saved.applied,
            hist,
            opened: saved.opened,
            promoted: saved.promoted,
            rolled_back: saved.rolled_back,
            last_good: saved.last_good.clone(),
            probation,
        })
    }
}

/// Serialized [`GroupFeedback`] state inside a checkpoint. Stats are
/// key-sorted on capture (the tracker's map is a `BTreeMap`), so two
/// captures of the same logical state produce identical bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackCheckpoint {
    /// Per-template statistics, key-sorted.
    pub stats: Vec<SavedStat>,
    /// Accepted probes folded in.
    pub probes: u64,
    /// Probes rejected.
    pub rejected: u64,
    /// Ratios applied at tune time (lifetime total).
    pub applied: u64,
    /// Applied-ratio histogram (see [`ratio_bucket`]).
    pub hist: Vec<u64>,
    /// Deployment candidates opened.
    pub opened: u64,
    /// Candidates promoted.
    pub promoted: u64,
    /// Candidates rolled back.
    pub rolled_back: u64,
    /// Last-good group checkpoint (JSON), the rollback target.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last_good: Option<String>,
    /// In-flight probation, if a candidate is deployed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub probation: Option<SavedProbation>,
}

/// One template's saved statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedStat {
    /// Query-kind rank (see `window::kind_rank`).
    pub kind: u8,
    /// Sorted selected-attribute ids.
    pub attrs: Vec<u32>,
    /// Access-path index attributes (`None` = sequential scan probe).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub index: Option<Vec<u32>>,
    /// Decayed sum of log observed costs.
    pub sum_log: f64,
    /// Decayed probe weight.
    pub weight: f64,
    /// Accepted probes for this template (undecayed).
    pub count: u64,
}

/// Saved probation record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedProbation {
    /// Incumbent selection as attribute lists.
    pub incumbent: Vec<Vec<u32>>,
    /// Epoch the candidate was opened at.
    pub opened_epoch: u64,
    /// Consecutive in-envelope epochs survived.
    pub survived: u64,
}

/// Live calibration counters on the status board — the atomics behind
/// the status line's `calibration` section.
#[derive(Debug, Default)]
pub struct CalCounters {
    /// Accepted probes.
    pub probes: AtomicU64,
    /// Rejected probes.
    pub rejected: AtomicU64,
    /// Ratios applied at tune time.
    pub applied: AtomicU64,
    /// Applied-ratio histogram buckets.
    pub hist: [AtomicU64; HIST_BUCKETS],
    /// Candidates opened.
    pub opened: AtomicU64,
    /// Candidates promoted.
    pub promoted: AtomicU64,
    /// Candidates rolled back.
    pub rolled_back: AtomicU64,
}

impl CalCounters {
    /// Read every counter into a plain snapshot.
    pub fn snapshot(&self) -> CalSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (dst, src) in hist.iter_mut().zip(&self.hist) {
            *dst = src.load(Ordering::Relaxed);
        }
        CalSnapshot {
            probes: self.probes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            hist: hist.to_vec(),
            opened: self.opened.load(Ordering::Relaxed),
            promoted: self.promoted.load(Ordering::Relaxed),
            rolled_back: self.rolled_back.load(Ordering::Relaxed),
        }
    }

    /// Overwrite every counter from a snapshot — the multi-process
    /// supervisor mirrors the summed per-shard snapshots its workers
    /// report into the board this way.
    pub fn store(&self, snap: &CalSnapshot) {
        self.probes.store(snap.probes, Ordering::Relaxed);
        self.rejected.store(snap.rejected, Ordering::Relaxed);
        self.applied.store(snap.applied, Ordering::Relaxed);
        for (dst, src) in self.hist.iter().zip(&snap.hist) {
            dst.store(*src, Ordering::Relaxed);
        }
        self.opened.store(snap.opened, Ordering::Relaxed);
        self.promoted.store(snap.promoted, Ordering::Relaxed);
        self.rolled_back.store(snap.rolled_back, Ordering::Relaxed);
    }
}

/// Plain-value calibration counters: the payload of the
/// `{"control":"calibration"}` answer, the `calibration` status-line
/// section, and the per-shard sums a worker reports in its acks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalSnapshot {
    /// Accepted probes.
    pub probes: u64,
    /// Rejected probes.
    pub rejected: u64,
    /// Ratios applied at tune time.
    pub applied: u64,
    /// Applied-ratio histogram, [`HIST_BUCKETS`] long (see
    /// [`ratio_bucket`]; a `Vec` because fixed-size arrays don't cross
    /// the serde boundary).
    pub hist: Vec<u64>,
    /// Deployment candidates opened.
    pub opened: u64,
    /// Candidates promoted.
    pub promoted: u64,
    /// Candidates rolled back.
    pub rolled_back: u64,
}

impl Default for CalSnapshot {
    fn default() -> Self {
        Self {
            probes: 0,
            rejected: 0,
            applied: 0,
            hist: vec![0; HIST_BUCKETS],
            opened: 0,
            promoted: 0,
            rolled_back: 0,
        }
    }
}

impl CalSnapshot {
    /// Candidates still on probation: `opened - promoted - rolled_back`
    /// (saturating — partial streams can under-count opens).
    pub fn in_flight(&self) -> u64 {
        self.opened.saturating_sub(self.promoted + self.rolled_back)
    }

    /// Element-wise sum, for aggregating per-shard snapshots.
    pub fn add(&mut self, other: &CalSnapshot) {
        self.probes += other.probes;
        self.rejected += other.rejected;
        self.applied += other.applied;
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (dst, src) in self.hist.iter_mut().zip(&other.hist) {
            *dst += *src;
        }
        self.opened += other.opened;
        self.promoted += other.promoted;
        self.rolled_back += other.rolled_back;
    }

    /// The inner counters object, without the `calibration` wrapper —
    /// embedded into the status line.
    pub fn render_inner(&self) -> String {
        format!(
            "{{\"probes\":{},\"rejected\":{},\"applied\":{},\
             \"hist\":[{}],\"opened\":{},\"promoted\":{},\"rolled_back\":{},\
             \"in_flight\":{}}}",
            self.probes,
            self.rejected,
            self.applied,
            self.hist.iter().map(u64::to_string).collect::<Vec<_>>().join(","),
            self.opened,
            self.promoted,
            self.rolled_back,
            self.in_flight()
        )
    }

    /// The canonical one-line JSON rendering — byte-identical however
    /// the snapshot was produced (live daemon, router, supervisor sum,
    /// or offline replay), so served and offline answers diff cleanly.
    pub fn render(&self) -> String {
        format!("{{\"calibration\":{}}}", self.render_inner())
    }
}

fn bump(cal: Option<&CalCounters>, f: impl FnOnce(&CalCounters)) {
    if let Some(c) = cal {
        f(c);
    }
}

/// Tune one sealed epoch through the calibration-and-deployment
/// pipeline. With calibration disabled this is exactly
/// [`Tuner::tune`]; enabled, the tuner plans through a
/// [`CalibratedWhatIf`] built from the group's warm templates, and
/// selection changes pass through the deployment gate (groups only —
/// the gate needs the table-scoped [`GroupCheckpoint`] rollback
/// target, so the unsharded whole-schema daemon calibrates estimates
/// but deploys directly).
#[allow(clippy::too_many_arguments)]
pub(crate) fn tune_group(
    tuner: &mut Tuner,
    window: &mut EpochWindow,
    feedback: &mut GroupFeedback,
    snapshot: &Workload,
    schema: &Schema,
    config: &ServiceConfig,
    par: Parallelism,
    trace: Trace<'_>,
    cal: Option<&CalCounters>,
) -> EpochOutcome {
    if !config.calibration.enabled {
        return tuner.tune(snapshot, par, trace);
    }
    let inner = AnalyticalWhatIf::new(snapshot);
    let probes = feedback.tracker_mut(config).warm_probes();
    let table = RatioTable::build(&inner, &probes);
    if !table.is_empty() {
        let ratios = table.all_ratios();
        feedback.applied += ratios.len() as u64;
        bump(cal, |c| {
            c.applied.fetch_add(ratios.len() as u64, Ordering::Relaxed);
        });
        for r in &ratios {
            let b = ratio_bucket(*r);
            feedback.hist[b] += 1;
            bump(cal, |c| {
                c.hist[b].fetch_add(1, Ordering::Relaxed);
            });
        }
        let tracker = feedback.tracker.as_ref().expect("tracker initialized above");
        let (p, rj, n) = (tracker.probes(), tracker.rejected(), ratios.len() as u64);
        trace.emit(|| TraceEvent::Calibration { probes: p, rejected: rj, templates: n });
    }
    let est = CachingWhatIf::new(CalibratedWhatIf::new(inner, table));
    let prev_selection = tuner.selection().clone();
    let gated = tuner.scope().is_some();
    let mut out = tuner.tune_with(snapshot, &est, par, trace);
    if !gated {
        return out;
    }
    let group_table = out.table.map_or(0, |t| t.0);
    match feedback.probation.take() {
        None => {
            if out.selection != prev_selection && feedback.last_good.is_some() {
                // A re-selection under calibrated costs: deploy it as a
                // candidate, on probation against the incumbent.
                feedback.opened += 1;
                bump(cal, |c| {
                    c.opened.fetch_add(1, Ordering::Relaxed);
                });
                let incumbent_cost = prev_selection.cost(&est);
                let candidate_cost = out.workload_cost;
                feedback.probation = Some(Probation {
                    incumbent: prev_selection,
                    opened_epoch: out.epoch,
                    survived: 0,
                });
                out.deploy = Some(DeployNote {
                    action: "candidate".into(),
                    incumbent_cost,
                    candidate_cost,
                });
                let epoch = out.epoch;
                trace.emit(|| TraceEvent::Deploy {
                    action: "candidate".into(),
                    table: group_table,
                    epoch,
                    incumbent_cost,
                    candidate_cost,
                });
            }
        }
        Some(mut probation) => {
            let candidate_cost = out.workload_cost;
            let incumbent_cost = probation.incumbent.cost(&est);
            let violation = if !candidate_cost.is_finite() {
                true
            } else if !incumbent_cost.is_finite() {
                false
            } else {
                candidate_cost > config.calibration.envelope_ratio * incumbent_cost
            };
            if violation {
                match rollback(tuner, window, feedback, schema, config) {
                    Ok(()) => {
                        feedback.rolled_back += 1;
                        bump(cal, |c| {
                            c.rolled_back.fetch_add(1, Ordering::Relaxed);
                        });
                        // The restored selection replaces the epoch's
                        // output; the epoch counter stays monotonic so
                        // downstream outcome streams never rewind.
                        tuner.set_epoch(out.epoch + 1);
                        out.selection = tuner.selection().clone();
                        out.workload_cost = out.selection.cost(&est);
                        out.deploy = Some(DeployNote {
                            action: "rollback".into(),
                            incumbent_cost,
                            candidate_cost,
                        });
                        let epoch = out.epoch;
                        trace.emit(|| TraceEvent::Deploy {
                            action: "rollback".into(),
                            table: group_table,
                            epoch,
                            incumbent_cost,
                            candidate_cost,
                        });
                    }
                    Err(_) => {
                        // The rollback target failed to restore (it was
                        // validated when captured, so this is only
                        // reachable through external corruption). Keep
                        // the candidate — counted as a promotion so the
                        // gate accounting stays balanced.
                        promote(feedback, &mut out, cal, trace, group_table, incumbent_cost);
                        capture_last_good(tuner, window, feedback);
                    }
                }
            } else {
                probation.survived += 1;
                if probation.survived >= config.calibration.probation_epochs {
                    promote(feedback, &mut out, cal, trace, group_table, incumbent_cost);
                    capture_last_good(tuner, window, feedback);
                } else {
                    feedback.probation = Some(probation);
                }
            }
        }
    }
    if feedback.probation.is_none() {
        capture_last_good(tuner, window, feedback);
    }
    out
}

fn promote(
    feedback: &mut GroupFeedback,
    out: &mut EpochOutcome,
    cal: Option<&CalCounters>,
    trace: Trace<'_>,
    table: u16,
    incumbent_cost: f64,
) {
    feedback.promoted += 1;
    bump(cal, |c| {
        c.promoted.fetch_add(1, Ordering::Relaxed);
    });
    let candidate_cost = out.workload_cost;
    out.deploy = Some(DeployNote { action: "promote".into(), incumbent_cost, candidate_cost });
    let epoch = out.epoch;
    trace.emit(|| TraceEvent::Deploy {
        action: "promote".into(),
        table,
        epoch,
        incumbent_cost,
        candidate_cost,
    });
}

/// Capture the group's current state as the rollback target. The
/// window's current batch was just sealed (capture happens right after
/// a tune), so the restore-side seal check always passes.
fn capture_last_good(tuner: &mut Tuner, window: &EpochWindow, feedback: &mut GroupFeedback) {
    if let Ok(json) = GroupCheckpoint::capture(tuner, window).to_json() {
        feedback.last_good = Some(json);
    }
}

/// Restore the group to its last-good checkpoint (the deployment
/// gate's rollback). Byte-level the same restore the failover path
/// runs, so a rolled-back group is bit-identical to one that crashed
/// at the last-good barrier and recovered.
fn rollback(
    tuner: &mut Tuner,
    window: &mut EpochWindow,
    feedback: &GroupFeedback,
    schema: &Schema,
    config: &ServiceConfig,
) -> Result<(), String> {
    let json = feedback.last_good.as_ref().ok_or("no last-good checkpoint")?;
    let gc = GroupCheckpoint::from_json(json)?;
    let (restored_tuner, restored_window) = gc.restore(schema, config)?;
    *tuner = restored_tuner;
    *window = restored_window;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isel_workload::synthetic::{generate, SyntheticConfig};
    use isel_workload::{AttrId, Query, QueryKind, TableId};
    use proptest::prelude::*;

    fn workload() -> Workload {
        generate(&SyntheticConfig {
            tables: 1,
            attrs_per_table: 10,
            queries_per_table: 8,
            rows_base: 80_000,
            max_query_width: 3,
            update_fraction: 0.0,
            seed: 5,
        })
    }

    fn cal_config(enabled: bool) -> ServiceConfig {
        let mut cfg = ServiceConfig {
            epoch_events: 8,
            window_epochs: 2,
            ..ServiceConfig::default()
        };
        cfg.calibration.enabled = enabled;
        cfg.calibration.min_probes = 1;
        cfg
    }

    fn observed(query: &Query, cost: f64) -> ObservedEvent {
        ObservedEvent { query: query.clone(), index: None, cost }
    }

    fn mk_window(w: &Workload, config: &ServiceConfig) -> EpochWindow {
        EpochWindow::new(
            w.schema().clone(),
            config.epoch_events,
            config.window_epochs,
            config.max_templates,
        )
    }

    /// Drive `n` sealed epochs of `w` through the calibrated pipeline.
    fn drive(
        tuner: &mut Tuner,
        window: &mut EpochWindow,
        feedback: &mut GroupFeedback,
        w: &Workload,
        config: &ServiceConfig,
        n: usize,
    ) -> Vec<EpochOutcome> {
        let mut outs = Vec::new();
        for _ in 0..n {
            for (_, q) in w.iter() {
                if window.push(q) {
                    let snap = window.snapshot().expect("sealed epoch has a snapshot");
                    outs.push(tune_group(
                        tuner,
                        window,
                        feedback,
                        &snap,
                        w.schema(),
                        config,
                        Parallelism::serial(),
                        Trace::disabled(),
                        None,
                    ));
                }
            }
        }
        outs
    }

    #[test]
    fn disabled_calibration_is_plain_tune() {
        let w = workload();
        let config = cal_config(false);
        let mut a = Tuner::for_table(w.schema(), config.clone(), TableId(0));
        let mut wa = mk_window(&w, &config);
        let mut fa = GroupFeedback::new(&config);
        let out_a = drive(&mut a, &mut wa, &mut fa, &w, &config, 2);

        let mut b = Tuner::for_table(w.schema(), config.clone(), TableId(0));
        let mut wb = mk_window(&w, &config);
        let mut out_b = Vec::new();
        for _ in 0..2 {
            for (_, q) in w.iter() {
                if wb.push(q) {
                    let snap = wb.snapshot().unwrap();
                    out_b.push(b.tune(&snap, Parallelism::serial(), Trace::disabled()));
                }
            }
        }
        assert_eq!(out_a.len(), out_b.len());
        for (x, y) in out_a.iter().zip(&out_b) {
            assert_eq!(x.selection, y.selection);
            assert_eq!(x.workload_cost.to_bits(), y.workload_cost.to_bits());
            assert!(x.deploy.is_none());
        }
        assert_eq!(fa.snapshot(), CalSnapshot::default());
    }

    #[test]
    fn rollback_restores_the_last_good_selection_bytes() {
        let w = workload();
        let mut config = cal_config(true);
        config.calibration.envelope_ratio = 1.0;
        let mut tuner = Tuner::for_table(w.schema(), config.clone(), TableId(0));
        let mut window = mk_window(&w, &config);
        let mut feedback = GroupFeedback::new(&config);

        // Bootstrap: tune once so a last-good checkpoint exists.
        drive(&mut tuner, &mut window, &mut feedback, &w, &config, 1);
        let last_good = feedback.last_good.clone().expect("bootstrap captured last-good");
        let good_selection = GroupCheckpoint::from_json(&last_good).unwrap().selection;

        // Poison the tracker: claim every template observed 1000x its
        // estimate, forcing a calibrated re-selection.
        let est = AnalyticalWhatIf::new(&w);
        for (qid, q) in w.iter() {
            let base = isel_costmodel::WhatIfOptimizer::unindexed_cost(&est, qid);
            feedback.observe(&config, &observed(q, base * 1000.0), None, Trace::disabled());
        }
        drop(est);
        let outs = drive(&mut tuner, &mut window, &mut feedback, &w, &config, 4);
        let actions: Vec<&str> = outs
            .iter()
            .filter_map(|o| o.deploy.as_ref().map(|d| d.action.as_str()))
            .collect();
        let snap = feedback.snapshot();
        assert_eq!(
            snap.opened,
            snap.promoted + snap.rolled_back + snap.in_flight(),
            "gate accounting balances: {actions:?}"
        );
        // If a rollback fired, the restored selection must be the
        // last-good one, byte for byte.
        if let Some(pos) = actions.iter().position(|a| *a == "rollback") {
            let rolled = outs
                .iter()
                .filter(|o| o.deploy.is_some())
                .nth(pos)
                .unwrap();
            let gc = GroupCheckpoint::from_json(feedback.last_good.as_ref().unwrap()).unwrap();
            assert_eq!(gc.selection, good_selection, "last-good unchanged by rollback");
            let (restored, _) = gc.restore(w.schema(), &config).unwrap();
            assert_eq!(&rolled.selection, restored.selection());
        }
    }

    #[test]
    fn promotion_happens_after_probation_epochs() {
        let w = workload();
        let mut config = cal_config(true);
        // A generous envelope: any candidate survives.
        config.calibration.envelope_ratio = 1e9;
        config.calibration.probation_epochs = 2;
        let mut tuner = Tuner::for_table(w.schema(), config.clone(), TableId(0));
        let mut window = mk_window(&w, &config);
        let mut feedback = GroupFeedback::new(&config);
        drive(&mut tuner, &mut window, &mut feedback, &w, &config, 1);
        for (_, q) in w.iter() {
            feedback.observe(&config, &observed(q, 1e7), None, Trace::disabled());
        }
        let outs = drive(&mut tuner, &mut window, &mut feedback, &w, &config, 5);
        let snap = feedback.snapshot();
        assert_eq!(snap.rolled_back, 0, "envelope can't be violated");
        assert_eq!(snap.opened, snap.promoted + snap.in_flight());
        if snap.opened > 0 {
            assert!(
                outs.iter().any(|o| {
                    o.deploy.as_ref().is_some_and(|d| d.action == "promote")
                        || o.deploy.as_ref().is_some_and(|d| d.action == "candidate")
                }),
                "gate actions surface in outcomes"
            );
        }
    }

    #[test]
    fn feedback_checkpoint_round_trips() {
        let w = workload();
        let config = cal_config(true);
        let mut feedback = GroupFeedback::new(&config);
        for (i, (_, q)) in w.iter().enumerate() {
            feedback.observe(&config, &observed(q, (i + 1) as f64), None, Trace::disabled());
        }
        feedback.observe(
            &config,
            &observed(w.iter().next().unwrap().1, f64::NAN),
            None,
            Trace::disabled(),
        );
        feedback.applied = 7;
        feedback.hist[4] = 7;
        feedback.opened = 2;
        feedback.promoted = 1;
        let saved = feedback.save();
        let json = serde_json::to_string(&saved).unwrap();
        let back: FeedbackCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(saved, back, "serde round-trip is lossless");
        let loaded = GroupFeedback::load(&back, &config).unwrap();
        assert_eq!(loaded.snapshot(), feedback.snapshot());
        assert_eq!(
            serde_json::to_string(&loaded.save()).unwrap(),
            json,
            "recapture is byte-identical"
        );
        // Warm probes survive the round trip exactly.
        let a = feedback.tracker.as_ref().unwrap().warm_probes();
        let b = loaded.tracker.as_ref().unwrap().warm_probes();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.attrs, y.attrs);
            assert_eq!(x.observed_mean.to_bits(), y.observed_mean.to_bits());
        }
    }

    #[test]
    fn snapshot_render_is_canonical_json() {
        let snap = CalSnapshot {
            probes: 10,
            rejected: 2,
            applied: 5,
            hist: vec![0, 0, 0, 1, 4, 0, 0, 0],
            opened: 3,
            promoted: 1,
            rolled_back: 1,
        };
        let line = snap.render();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        let cal = v.get("calibration").expect("calibration object");
        assert_eq!(cal.get("probes").and_then(serde_json::Value::as_u64), Some(10));
        assert_eq!(cal.get("in_flight").and_then(serde_json::Value::as_u64), Some(1));
        let mut sum = CalSnapshot::default();
        sum.add(&snap);
        sum.add(&snap);
        assert_eq!(sum.probes, 20);
        assert_eq!(sum.hist[4], 8);
        assert_eq!(sum.in_flight(), 2);
    }

    #[test]
    fn ratio_buckets_cover_the_clamp_range() {
        assert_eq!(ratio_bucket(1.0), 4);
        assert_eq!(ratio_bucket(0.99), 3);
        assert_eq!(ratio_bucket(2.0), 5);
        assert_eq!(ratio_bucket(1.0 / 64.0), 0);
        assert_eq!(ratio_bucket(64.0), 7);
        assert_eq!(ratio_bucket(1e300), 7);
    }

    proptest! {
        /// Garbage probes never panic, never poison accepted state, and
        /// the counters always reconcile.
        #[test]
        fn tracker_survives_garbage_costs(
            costs in proptest::collection::vec(
                (0usize..7, -1e12f64..=1e12f64).prop_map(|(k, r)| match k {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => f64::MIN_POSITIVE,
                    _ => r,
                }),
                1..64,
            ),
            attrs in proptest::collection::vec(0u32..6, 1..3),
        ) {
            let mut tracker = RatioTracker::new(0.9, 2);
            let query = Query::with_kind(
                TableId(0),
                attrs.iter().map(|a| AttrId(*a)).collect::<std::collections::BTreeSet<_>>()
                    .into_iter().collect(),
                1,
                QueryKind::Select,
            );
            let mut accepted = 0u64;
            for cost in &costs {
                let event = ObservedEvent { query: query.clone(), index: None, cost: *cost };
                if tracker.observe(&event) {
                    accepted += 1;
                }
            }
            prop_assert_eq!(tracker.probes(), accepted);
            prop_assert_eq!(tracker.rejected(), costs.len() as u64 - accepted);
            // Every warm mean is a sane positive finite number.
            for probe in tracker.warm_probes() {
                prop_assert!(probe.observed_mean.is_finite());
                prop_assert!(probe.observed_mean > 0.0);
            }
        }

        /// Observations for templates no workload will ever match are
        /// harmless: the built ratio table just skips them.
        #[test]
        fn unknown_templates_never_poison_the_table(
            attr in 0u32..64,
            cost in 1e-6f64..1e9,
        ) {
            let w = workload();
            let config = cal_config(true);
            let mut feedback = GroupFeedback::new(&config);
            let alien = Query::with_kind(
                TableId(0),
                vec![AttrId(attr % 10), AttrId((attr + 1) % 10)],
                1,
                QueryKind::Update,
            );
            feedback.observe(
                &config,
                &ObservedEvent { query: alien, index: None, cost },
                None,
                Trace::disabled(),
            );
            let inner = AnalyticalWhatIf::new(&w);
            let probes = feedback.tracker.as_ref().unwrap().warm_probes();
            let table = RatioTable::build(&inner, &probes);
            // Either the template matched a real query or it was
            // skipped — never a panic, never a bogus entry.
            prop_assert!(table.len() <= probes.len());
        }
    }
}
