//! Drift-triggered epoch tuning.
//!
//! Per sealed epoch the tuner compares the new window snapshot against
//! the snapshot of the *last re-selection* using
//! `workload::drift::attribute_overlap` and picks one of three policies:
//!
//! * **no-op** — the hot set barely moved; keep the selection and pay
//!   nothing (no Algorithm-1 run at all),
//! * **adapt** — reconfiguration-aware re-selection: the previous
//!   selection becomes the `Ī*` baseline of [`isel_core::reconfig`],
//!   exactly as one epoch of [`isel_core::dynamic::adapt`],
//! * **from-scratch** — the workload moved too far; re-select ignoring
//!   transition costs (they are still *billed* in the outcome).
//!
//! The drift baseline re-anchors only on re-selection, so slow drift
//! accumulates across no-op epochs until it crosses a threshold instead
//! of being absorbed epoch by epoch.
//!
//! With [`DriftThresholds::always_adapt`] the decision is Adapt on every
//! epoch, and the produced selection sequence is bit-identical to
//! [`isel_core::dynamic::adapt`] over the same snapshots — the service's
//! replay determinism contract (DESIGN.md §12).

use crate::arbiter::PublishedFrontier;
use crate::config::ServiceConfig;
#[cfg(doc)]
use crate::config::DriftThresholds;
use isel_core::algorithm1::{self, Options};
use isel_core::reconfig::ReconfigCosts;
use isel_core::trace::{Trace, TraceEvent};
use isel_core::{budget, Parallelism, Selection};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::drift;
use isel_workload::{IndexPool, Schema, TableId, Workload};
use std::sync::Arc;

/// Tuning policy chosen for one epoch. Serde so a worker process can
/// report its outcomes to the supervisor (see [`crate::process`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TunePolicy {
    /// Selection kept unchanged.
    NoOp,
    /// Reconfiguration-aware re-selection.
    Adapt,
    /// Re-selection ignoring transition costs.
    FromScratch,
}

impl TunePolicy {
    /// Label used in [`TraceEvent::Epoch`] and reports. `"adapt"` and
    /// `"from_scratch"` match the offline `dynamic` policies; `"noop"`
    /// is service-only.
    pub fn label(self) -> &'static str {
        match self {
            TunePolicy::NoOp => "noop",
            TunePolicy::Adapt => "adapt",
            TunePolicy::FromScratch => "from_scratch",
        }
    }
}

/// Outcome of tuning one sealed epoch. Serde so a worker process can
/// report its outcomes to the supervisor (see [`crate::process`]).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EpochOutcome {
    /// Zero-based epoch number.
    pub epoch: u64,
    /// Policy the drift detector chose.
    pub policy: TunePolicy,
    /// Overlap with the last re-selected snapshot (`None` on the first
    /// tuned epoch — there is nothing to compare against).
    pub overlap: Option<f64>,
    /// Selection in force after the epoch.
    pub selection: Selection,
    /// Workload cost `F(I*)` of the snapshot under that selection.
    pub workload_cost: f64,
    /// Reconfiguration cost paid entering the epoch.
    pub reconfig_paid: f64,
    /// Memory budget `A(w)` the run was bounded by.
    pub budget: u64,
    /// Table group the epoch belongs to (`None` for the unsharded
    /// daemon, whose epochs span the whole schema).
    pub table: Option<TableId>,
    /// Shard the epoch was tuned on (`None` outside the sharded router).
    pub shard: Option<u32>,
    /// Deployment-gate action taken this epoch (`None` when the
    /// calibration gate is disabled or idle — absent on the wire, so
    /// uncalibrated outcome messages are byte-identical to earlier
    /// releases). See [`crate::feedback`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deploy: Option<DeployNote>,
}

/// Deployment-gate verdict attached to an [`EpochOutcome`] when the
/// calibration subsystem opened, promoted, or rolled back a candidate
/// selection this epoch (see [`crate::feedback`]).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeployNote {
    /// `"candidate"`, `"promote"`, or `"rollback"`.
    pub action: String,
    /// Workload cost of the incumbent selection under this epoch's
    /// estimator.
    pub incumbent_cost: f64,
    /// Workload cost of the candidate selection under this epoch's
    /// estimator.
    pub candidate_cost: f64,
}

/// Stateful per-epoch tuner: current selection, drift baseline, and the
/// service-lifetime [`IndexPool`] interning every index ever selected
/// (checkpointed so ids stay stable across restarts).
pub struct Tuner {
    config: ServiceConfig,
    pool: IndexPool,
    selection: Selection,
    prev_snapshot: Option<Workload>,
    epoch: u64,
    /// When set, budgets are computed over this table's attributes only
    /// (the table-separable split of Eq. 10 a sharded group runs under);
    /// `None` budgets over the full schema.
    scope: Option<TableId>,
    /// Frontier of the last epoch that actually re-selected, as handed
    /// to the [`crate::arbiter::Arbiter`]. No-op epochs leave it
    /// untouched (and clean).
    published: Option<Arc<PublishedFrontier>>,
    /// Whether `published` changed since it was last taken — the
    /// clean-group skip: a group that saw only no-op epochs (or none)
    /// is never re-published.
    published_dirty: bool,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("epoch", &self.epoch)
            .field("selection", &self.selection)
            .field("pool_len", &self.pool.len())
            .finish_non_exhaustive()
    }
}

impl Tuner {
    /// Fresh tuner with an empty selection, budgeting over the full
    /// schema.
    pub fn new(schema: &Schema, config: ServiceConfig) -> Self {
        Self {
            config,
            pool: IndexPool::new(schema),
            selection: Selection::empty(),
            prev_snapshot: None,
            epoch: 0,
            scope: None,
            published: None,
            published_dirty: false,
        }
    }

    /// Fresh tuner for one table group: budgets use only `table`'s share
    /// of the single-attribute memory, so per-group budgets sum to the
    /// global one (the table-separable split the sharded router relies
    /// on).
    pub fn for_table(schema: &Schema, config: ServiceConfig, table: TableId) -> Self {
        Self { scope: Some(table), ..Self::new(schema, config) }
    }

    /// Restore internal state from a checkpoint (see
    /// [`crate::checkpoint`]).
    pub(crate) fn restore(
        config: ServiceConfig,
        pool: IndexPool,
        selection: Selection,
        prev_snapshot: Option<Workload>,
        epoch: u64,
        scope: Option<TableId>,
        published: Option<Arc<PublishedFrontier>>,
    ) -> Self {
        let published_dirty = published.is_some();
        Self { config, pool, selection, prev_snapshot, epoch, scope, published, published_dirty }
    }

    /// Number of sealed epochs tuned so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Selection currently in force.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// The service-lifetime interning pool.
    pub fn pool(&self) -> &IndexPool {
        &self.pool
    }

    /// Snapshot of the last epoch that actually re-selected.
    pub fn drift_baseline(&self) -> Option<&Workload> {
        self.prev_snapshot.as_ref()
    }

    /// Table group this tuner budgets over, if scoped.
    pub fn scope(&self) -> Option<TableId> {
        self.scope
    }

    /// Frontier of the last epoch that re-selected, if any.
    pub fn published(&self) -> Option<&Arc<PublishedFrontier>> {
        self.published.as_ref()
    }

    /// Whether the publication changed since the last take, clearing
    /// the flag. Drives the clean-group skip: callers re-publish to the
    /// arbiter only when this returns `true`.
    pub fn take_published_dirty(&mut self) -> bool {
        std::mem::take(&mut self.published_dirty)
    }

    /// Compact the interning pool down to the current selection (plus
    /// prefix closure), returning how many dead entries were dropped.
    ///
    /// Tuning decisions never read old pool ids, so compaction at a
    /// quiescent point (just before a checkpoint is captured) changes no
    /// observable other than checkpoint size.
    pub fn compact_pool(&mut self) -> usize {
        let before = self.pool.len();
        let live: Vec<_> = self.selection.indexes().iter().map(|k| self.pool.intern(k)).collect();
        let remap = self.pool.compact(&live);
        before - remap.retained()
    }

    /// Set the lifetime epoch counter. Used by the deployment gate's
    /// rollback path ([`crate::feedback`]): a restored tuner must keep
    /// counting from the pre-rollback epoch so outcome streams stay
    /// monotonic and supervisor-side dedup by `(table, epoch)` works.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Tune one sealed epoch against its window `snapshot`.
    ///
    /// Emits the full Algorithm-1 event stream of any run it performs
    /// plus one [`TraceEvent::Epoch`]; attaching a sink changes no
    /// observable (the strategies' zero-cost trace contract).
    pub fn tune(&mut self, snapshot: &Workload, par: Parallelism, trace: Trace<'_>) -> EpochOutcome {
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(snapshot));
        self.tune_with(snapshot, &est, par, trace)
    }

    /// [`Self::tune`] against a caller-supplied estimator — the seam the
    /// calibration subsystem uses to swap in a
    /// [`isel_costmodel::CalibratedWhatIf`] stack. `tune` builds the
    /// default `CachingWhatIf<AnalyticalWhatIf>` and delegates here, so
    /// both paths are bit-identical when the estimator is.
    pub fn tune_with<W: WhatIfOptimizer>(
        &mut self,
        snapshot: &Workload,
        est: &W,
        par: Parallelism,
        trace: Trace<'_>,
    ) -> EpochOutcome {
        let budget = match self.scope {
            Some(t) => budget::table_relative_budget(&est, self.config.budget_share, t),
            None => budget::relative_budget(&est, self.config.budget_share),
        };
        let overlap = self
            .prev_snapshot
            .as_ref()
            .map(|prev| drift::attribute_overlap(prev, snapshot));
        let policy = match overlap {
            Some(o) if o >= self.config.drift.noop_above => TunePolicy::NoOp,
            Some(o) if o < self.config.drift.scratch_below => TunePolicy::FromScratch,
            _ => TunePolicy::Adapt,
        };
        let transition = self.config.transition;
        let run = match policy {
            TunePolicy::NoOp => None,
            TunePolicy::Adapt => {
                let mut options = Options::new(budget);
                options.parallelism = par;
                options.reconfig = ReconfigCosts {
                    current: self.selection.clone(),
                    create_cost_per_byte: transition.create_cost_per_byte,
                    drop_cost: transition.drop_cost,
                };
                Some(algorithm1::run_traced(&est, &options, trace))
            }
            TunePolicy::FromScratch => {
                let mut options = Options::new(budget);
                options.parallelism = par;
                Some(algorithm1::run_traced(&est, &options, trace))
            }
        };
        let selection = match &run {
            Some(r) => r.selection.clone(),
            None => self.selection.clone(),
        };
        let reconfig_paid = ReconfigCosts {
            current: self.selection.clone(),
            create_cost_per_byte: transition.create_cost_per_byte,
            drop_cost: transition.drop_cost,
        }
        .cost(&selection, &est);
        let workload_cost = selection.cost(&est);
        let epoch = self.epoch;
        trace.emit(|| TraceEvent::Epoch {
            epoch,
            policy: policy.label().into(),
            indexes: selection.len() as u64,
            workload_cost,
            reconfig_paid,
        });
        for k in selection.indexes() {
            self.pool.intern(k);
        }
        if policy != TunePolicy::NoOp {
            self.prev_snapshot = Some(snapshot.clone());
        }
        if let Some(r) = run {
            self.published = Some(Arc::new(PublishedFrontier {
                initial_cost: r.initial_cost,
                frontier: r.frontier,
                steps: r.steps,
                epoch,
            }));
            self.published_dirty = true;
        }
        self.selection = selection.clone();
        self.epoch += 1;
        EpochOutcome {
            epoch,
            policy,
            overlap,
            selection,
            workload_cost,
            reconfig_paid,
            budget,
            table: self.scope,
            shard: None,
            deploy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftThresholds;
    use isel_core::dynamic::{self, TransitionCosts};
    use isel_costmodel::WhatIfOptimizer;
    use isel_workload::drift::DriftConfig;
    use isel_workload::synthetic::SyntheticConfig;

    fn epochs() -> Vec<Workload> {
        drift::generate(&DriftConfig {
            base: SyntheticConfig {
                tables: 2,
                attrs_per_table: 12,
                queries_per_table: 15,
                rows_base: 50_000,
                max_query_width: 4,
                update_fraction: 0.0,
                seed: 11,
            },
            epochs: 3,
            rotation_per_epoch: 5,
        })
    }

    fn config(drift: DriftThresholds) -> ServiceConfig {
        ServiceConfig {
            budget_share: 0.3,
            transition: TransitionCosts { create_cost_per_byte: 0.001, drop_cost: 1.0 },
            drift,
            ..ServiceConfig::default()
        }
    }

    /// Always-adapt tuning is bit-identical to the offline
    /// `dynamic::adapt` loop over the same snapshots.
    #[test]
    fn always_adapt_matches_offline_dynamic_adapt() {
        let snaps = epochs();
        let cfg = config(DriftThresholds::always_adapt());
        let mut tuner = Tuner::new(snaps[0].schema(), cfg.clone());
        let online: Vec<Selection> = snaps
            .iter()
            .map(|w| tuner.tune(w, Parallelism::serial(), Trace::disabled()).selection)
            .collect();

        let ests: Vec<CachingWhatIf<AnalyticalWhatIf<'_>>> = snaps
            .iter()
            .map(|w| CachingWhatIf::new(AnalyticalWhatIf::new(w)))
            .collect();
        let refs: Vec<&dyn WhatIfOptimizer> =
            ests.iter().map(|e| e as &dyn WhatIfOptimizer).collect();
        let budget = budget::relative_budget(&refs[0], cfg.budget_share);
        let offline = dynamic::adapt(&refs, budget, cfg.transition);
        assert_eq!(online.len(), offline.epochs.len());
        for (o, e) in online.iter().zip(&offline.epochs) {
            assert_eq!(o, &e.selection);
        }
    }

    /// Identical consecutive snapshots with a high no-op threshold keep
    /// the selection without running the algorithm.
    #[test]
    fn noop_keeps_selection_on_stable_workload() {
        let snaps = epochs();
        let cfg = config(DriftThresholds { noop_above: 0.99, scratch_below: 0.0 });
        let mut tuner = Tuner::new(snaps[0].schema(), cfg);
        let first = tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert_eq!(first.policy, TunePolicy::Adapt, "bootstrap epoch adapts");
        assert_eq!(first.overlap, None);
        let second = tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert_eq!(second.policy, TunePolicy::NoOp);
        assert_eq!(second.selection, first.selection);
        assert_eq!(second.reconfig_paid, 0.0);
    }

    /// A scratch threshold above any achievable overlap forces the
    /// from-scratch policy once a baseline exists.
    #[test]
    fn heavy_drift_triggers_from_scratch() {
        let snaps = epochs();
        let cfg = config(DriftThresholds { noop_above: 2.0, scratch_below: 1.5 });
        let mut tuner = Tuner::new(snaps[0].schema(), cfg);
        tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        let out = tuner.tune(&snaps[1], Parallelism::serial(), Trace::disabled());
        assert_eq!(out.policy, TunePolicy::FromScratch);
    }

    /// The drift baseline re-anchors only on re-selection: after a no-op
    /// the comparison still runs against the last *tuned* snapshot.
    #[test]
    fn baseline_survives_noop_epochs() {
        let snaps = epochs();
        let cfg = config(DriftThresholds { noop_above: 0.99, scratch_below: 0.0 });
        let mut tuner = Tuner::new(snaps[0].schema(), cfg);
        tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        let baseline = tuner.drift_baseline().unwrap().clone();
        tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert_eq!(tuner.drift_baseline().unwrap(), &baseline);
    }

    /// Compaction keeps exactly the current selection's prefix closure
    /// and leaves tuning behavior untouched.
    #[test]
    fn compact_pool_drops_dead_entries_only() {
        let snaps = epochs();
        let cfg = config(DriftThresholds::always_adapt());
        let mut tuner = Tuner::new(snaps[0].schema(), cfg.clone());
        for w in &snaps {
            tuner.tune(w, Parallelism::serial(), Trace::disabled());
        }
        let selection = tuner.selection().clone();
        let live_before: Vec<_> =
            selection.indexes().iter().map(|k| tuner.pool().intern(k)).collect();
        let dropped = tuner.compact_pool();
        assert_eq!(tuner.pool().len() + dropped, {
            // Re-derive the pre-compaction size: closure + dropped.
            let mut probe = Tuner::new(snaps[0].schema(), cfg.clone());
            for w in &snaps {
                probe.tune(w, Parallelism::serial(), Trace::disabled());
            }
            probe.pool().len()
        });
        assert_eq!(live_before.len(), selection.len());
        for k in selection.indexes() {
            // Every live index still resolves through the compacted pool.
            let id = tuner.pool().intern(k);
            assert_eq!(tuner.pool().resolve(id).attrs(), k.attrs());
        }
        // Tuning continues to match an uncompacted twin bit-for-bit.
        let mut twin = Tuner::new(snaps[0].schema(), cfg);
        for w in &snaps {
            twin.tune(w, Parallelism::serial(), Trace::disabled());
        }
        let a = tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        let b = twin.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.workload_cost.to_bits(), b.workload_cost.to_bits());
    }

    /// A table-scoped tuner budgets over that table's attributes only.
    #[test]
    fn table_scope_narrows_the_budget() {
        let snaps = epochs();
        let cfg = config(DriftThresholds::always_adapt());
        let mut global = Tuner::new(snaps[0].schema(), cfg.clone());
        let mut scoped = Tuner::for_table(snaps[0].schema(), cfg, TableId(0));
        let g = global.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        let s = scoped.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert!(s.budget < g.budget, "2-table schema: one table's share is smaller");
        assert_eq!(s.table, Some(TableId(0)));
        assert_eq!(g.table, None);
    }

    /// Every selected index (and its prefixes) lands in the
    /// service-lifetime pool.
    #[test]
    fn selections_are_interned_into_the_pool() {
        let snaps = epochs();
        let mut tuner = Tuner::new(snaps[0].schema(), config(DriftThresholds::always_adapt()));
        let out = tuner.tune(&snaps[0], Parallelism::serial(), Trace::disabled());
        assert!(!out.selection.is_empty(), "30% budget must build indexes");
        for k in out.selection.indexes() {
            // Already interned: re-interning must not grow the pool.
            let before = tuner.pool().len();
            tuner.pool().intern(k);
            assert_eq!(tuner.pool().len(), before);
        }
    }
}
