//! Epoch-based sliding-window workload aggregation.
//!
//! Events are batched into *epochs* of `epoch_events` valid events. Each
//! epoch folds its events into a template map keyed by
//! `(table, kind, attrs)` — the same key `compress::merge_duplicates`
//! uses — so within an epoch, aggregation is a commutative sum and the
//! sealed batch is **order-insensitive**: any permutation of an epoch's
//! events yields the same batch (pinned by a property test).
//!
//! A sliding window keeps the last `window_epochs` sealed batches.
//! [`EpochWindow::snapshot`] merges the window, emits queries in
//! deterministic key order, and compresses to the `max_templates`
//! heaviest templates via `compress::top_k_by_weight` — producing the
//! [`Workload`] the tuner optimizes for. Eviction removes exactly the
//! oldest batch; no weight mass is ever lost inside the window
//! (also property-tested).

use isel_workload::compress;
use isel_workload::{AttrId, Query, QueryKind, Schema, TableId, Workload};
use std::collections::{BTreeMap, VecDeque};

/// Sort/merge key of a template: `QueryKind` carries no order, so it is
/// ranked explicitly (selects before updates).
pub(crate) type TemplateKey = (TableId, u8, Vec<AttrId>);

pub(crate) fn kind_rank(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Select => 0,
        QueryKind::Update => 1,
    }
}

pub(crate) fn rank_kind(rank: u8) -> Result<QueryKind, String> {
    match rank {
        0 => Ok(QueryKind::Select),
        1 => Ok(QueryKind::Update),
        other => Err(format!("unknown query-kind rank {other}")),
    }
}

/// One epoch's aggregated templates. A `BTreeMap` keeps iteration (and
/// therefore serialization) deterministic without an explicit sort.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct EpochBatch {
    pub(crate) templates: BTreeMap<TemplateKey, u64>,
    /// Raw event count (not frequency mass) — seals the epoch.
    pub(crate) events: u64,
}

impl EpochBatch {
    /// Total frequency mass of the batch.
    pub(crate) fn mass(&self) -> u64 {
        self.templates.values().sum()
    }
}

/// Sliding-window aggregator turning an event stream into per-epoch
/// workload snapshots.
#[derive(Debug)]
pub struct EpochWindow {
    schema: Schema,
    epoch_events: u64,
    window_epochs: usize,
    max_templates: usize,
    /// Sealed epochs, oldest first; at most `window_epochs` long.
    pub(crate) window: VecDeque<EpochBatch>,
    /// The partially-filled current epoch.
    pub(crate) current: EpochBatch,
}

impl EpochWindow {
    /// Empty window over `schema`.
    ///
    /// # Panics
    ///
    /// Panics if any sizing parameter is zero.
    pub fn new(
        schema: Schema,
        epoch_events: u64,
        window_epochs: usize,
        max_templates: usize,
    ) -> Self {
        assert!(epoch_events >= 1, "epoch_events must be at least 1");
        assert!(window_epochs >= 1, "window_epochs must be at least 1");
        assert!(max_templates >= 1, "max_templates must be at least 1");
        Self {
            schema,
            epoch_events,
            window_epochs,
            max_templates,
            window: VecDeque::new(),
            current: EpochBatch::default(),
        }
    }

    /// Fold one event into the current epoch. Returns `true` when the
    /// event sealed an epoch (time to tune).
    pub fn push(&mut self, query: &Query) -> bool {
        let key = (query.table(), kind_rank(query.kind()), query.attrs().to_vec());
        *self.current.templates.entry(key).or_insert(0) += query.frequency();
        self.current.events += 1;
        if self.current.events < self.epoch_events {
            return false;
        }
        self.window.push_back(std::mem::take(&mut self.current));
        if self.window.len() > self.window_epochs {
            self.window.pop_front();
        }
        true
    }

    /// Merge the window into one compressed [`Workload`] snapshot.
    /// `None` until the first epoch seals.
    pub fn snapshot(&self) -> Option<Workload> {
        if self.window.is_empty() {
            return None;
        }
        let mut merged: BTreeMap<&TemplateKey, u64> = BTreeMap::new();
        for batch in &self.window {
            for (key, freq) in &batch.templates {
                *merged.entry(key).or_insert(0) += freq;
            }
        }
        let queries: Vec<Query> = merged
            .into_iter()
            .map(|((table, kind, attrs), freq)| {
                let kind = rank_kind(*kind).expect("ranks produced by kind_rank");
                Query::with_kind(*table, attrs.clone(), freq, kind)
            })
            .collect();
        let full = Workload::new(self.schema.clone(), queries);
        Some(compress::top_k_by_weight(&full, self.max_templates, |q| {
            q.frequency() as f64
        }))
    }

    /// The schema snapshots are built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of sealed epochs currently in the window.
    pub fn sealed_epochs(&self) -> usize {
        self.window.len()
    }

    /// Events in the partially-filled current epoch.
    pub fn current_events(&self) -> u64 {
        self.current.events
    }

    /// Frequency mass of every sealed epoch, oldest first — exposed for
    /// the mass-conservation property tests.
    pub fn sealed_masses(&self) -> Vec<u64> {
        self.window.iter().map(EpochBatch::mass).collect()
    }

    /// Total frequency mass across the sealed window plus the current
    /// partial epoch.
    pub fn total_mass(&self) -> u64 {
        self.window.iter().map(EpochBatch::mass).sum::<u64>() + self.current.mass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isel_workload::SchemaBuilder;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let t = b.table("t", 10_000);
        for i in 0..4 {
            b.attribute(t, &format!("a{i}"), 100, 4);
        }
        b.finish()
    }

    fn q(attrs: &[u32], freq: u64) -> Query {
        Query::new(TableId(0), attrs.iter().copied().map(AttrId).collect(), freq)
    }

    #[test]
    fn epochs_seal_every_n_events() {
        let mut w = EpochWindow::new(schema(), 3, 2, 16);
        assert!(!w.push(&q(&[0], 1)));
        assert!(!w.push(&q(&[1], 1)));
        assert!(w.push(&q(&[2], 1)), "third event seals the epoch");
        assert_eq!(w.sealed_epochs(), 1);
        assert_eq!(w.current_events(), 0);
    }

    #[test]
    fn window_evicts_oldest_epoch() {
        let mut w = EpochWindow::new(schema(), 1, 2, 16);
        w.push(&q(&[0], 5));
        w.push(&q(&[1], 7));
        w.push(&q(&[2], 9));
        assert_eq!(w.sealed_epochs(), 2);
        assert_eq!(w.sealed_masses(), vec![7, 9], "epoch of mass 5 evicted");
    }

    #[test]
    fn snapshot_merges_and_orders_templates() {
        let mut w = EpochWindow::new(schema(), 2, 2, 16);
        w.push(&q(&[1], 4));
        w.push(&q(&[0], 2));
        w.push(&q(&[0], 3));
        w.push(&q(&[3], 1));
        let snap = w.snapshot().unwrap();
        // Templates in key order, duplicate a0 merged across epochs.
        let got: Vec<(Vec<AttrId>, u64)> = snap
            .queries()
            .iter()
            .map(|q| (q.attrs().to_vec(), q.frequency()))
            .collect();
        assert_eq!(
            got,
            vec![
                (vec![AttrId(0)], 5),
                (vec![AttrId(1)], 4),
                (vec![AttrId(3)], 1),
            ]
        );
    }

    #[test]
    fn snapshot_compresses_to_top_k() {
        let mut w = EpochWindow::new(schema(), 4, 1, 2);
        w.push(&q(&[0], 100));
        w.push(&q(&[1], 1));
        w.push(&q(&[2], 50));
        w.push(&q(&[3], 2));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.query_count(), 2);
        assert_eq!(snap.total_frequency(), 150, "heaviest templates kept");
    }

    #[test]
    fn no_snapshot_before_first_seal() {
        let mut w = EpochWindow::new(schema(), 10, 2, 16);
        w.push(&q(&[0], 1));
        assert!(w.snapshot().is_none());
    }

    #[test]
    fn updates_and_selects_are_distinct_templates() {
        let mut w = EpochWindow::new(schema(), 2, 1, 16);
        w.push(&Query::new(TableId(0), vec![AttrId(0)], 3));
        w.push(&Query::update(TableId(0), vec![AttrId(0)], 4));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.query_count(), 2);
        assert!(!snap.queries()[0].is_update());
        assert!(snap.queries()[1].is_update());
    }
}
