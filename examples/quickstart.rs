//! Quickstart: recommend indexes for a small hand-written workload.
//!
//! ```bash
//! cargo run -p isel-examples --release --example quickstart
//! ```
//!
//! Walks the full public API once: build a schema, describe a workload,
//! wrap the analytical what-if optimizer in a cache, pick a budget, run the
//! recursive strategy, and inspect the construction log.

use isel_core::{algorithm1, budget};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::{Query, SchemaBuilder, Workload};

fn main() {
    // An orders table: 2M rows, a few columns of very different
    // cardinality.
    let mut schema = SchemaBuilder::new();
    let orders = schema.table("orders", 2_000_000);
    let order_id = schema.attribute(orders, "order_id", 2_000_000, 8);
    let customer_id = schema.attribute(orders, "customer_id", 50_000, 4);
    let status = schema.attribute(orders, "status", 8, 1);
    let region = schema.attribute(orders, "region", 50, 2);
    let schema = schema.finish();

    // Query templates with their daily frequencies.
    let workload = Workload::new(
        schema,
        vec![
            Query::new(orders, vec![order_id], 10_000), // point lookup
            Query::new(orders, vec![customer_id, status], 4_000), // customer view
            Query::new(orders, vec![region, status], 500), // dashboard
            Query::new(orders, vec![customer_id], 1_500),
        ],
    );

    // The what-if oracle: the paper's Appendix-B cost model behind a cache.
    let whatif = CachingWhatIf::new(AnalyticalWhatIf::new(&workload));

    // Budget: 40% of what indexing every column individually would cost.
    let a = budget::relative_budget(&whatif, 0.4);
    println!("memory budget: {:.1} MiB", a as f64 / (1024.0 * 1024.0));

    let result = algorithm1::run(&whatif, &algorithm1::Options::new(a));

    println!("\nconstruction steps:");
    for (n, step) in result.steps.iter().enumerate() {
        let what = match &step.action {
            algorithm1::StepAction::NewIndex(k) => format!("create {k}"),
            algorithm1::StepAction::Extend { from, to } => format!("morph {from} -> {to}"),
            algorithm1::StepAction::Prune(ks) => format!("prune {} unused", ks.len()),
        };
        println!(
            "  step {:>2}: {what:<40} benefit/byte = {:.3}",
            n + 1,
            step.ratio
        );
    }

    println!("\nrecommended indexes:");
    for k in result.selection.indexes() {
        println!("  {k}  ({} KiB)", whatif.index_memory_of(k) / 1024);
    }
    println!(
        "\nworkload cost: {:.3e} -> {:.3e}  ({:.1}% of baseline), {} what-if calls",
        result.initial_cost,
        result.final_cost,
        100.0 * result.final_cost / result.initial_cost,
        whatif.stats().calls_issued,
    );
}
