//! Adapting to a drifting workload (the paper's Section-VII scenario).
//!
//! ```bash
//! cargo run -p isel-examples --release --example dynamic_advisor
//! ```
//!
//! Generates six workload epochs whose hot attribute set rotates, then
//! compares three policies under size-proportional index build costs:
//! keep the first configuration forever, rebuild from scratch every epoch,
//! or adapt with reconfiguration costs in the loop.

use isel_core::dynamic::{self, TransitionCosts};
use isel_core::budget;
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::drift::{self, DriftConfig};
use isel_workload::synthetic::SyntheticConfig;

fn main() {
    let scenario = drift::generate(&DriftConfig {
        base: SyntheticConfig {
            tables: 3,
            attrs_per_table: 25,
            queries_per_table: 30,
            ..SyntheticConfig::default()
        },
        epochs: 6,
        rotation_per_epoch: 5,
    });
    println!("drift scenario: {} epochs over one schema", scenario.len());
    for (e, w) in scenario.iter().enumerate().skip(1) {
        println!(
            "  epoch {e}: hot-set overlap with epoch 0 = {:.2}",
            drift::attribute_overlap(&scenario[0], w)
        );
    }

    let ests: Vec<CachingWhatIf<AnalyticalWhatIf<'_>>> = scenario
        .iter()
        .map(|w| CachingWhatIf::new(AnalyticalWhatIf::new(w)))
        .collect();
    let refs: Vec<&dyn WhatIfOptimizer> =
        ests.iter().map(|e| e as &dyn WhatIfOptimizer).collect();
    let a = budget::relative_budget(&refs[0], 0.25);
    let costs = TransitionCosts { create_cost_per_byte: 0.05, drop_cost: 10_000.0 };

    println!("\npolicy      total-cost    workload     reconfig   churned-indexes");
    for (name, trace) in [
        ("static  ", dynamic::static_first_epoch(&refs, a, costs)),
        ("scratch ", dynamic::from_scratch(&refs, a, costs)),
        ("adaptive", dynamic::adapt(&refs, a, costs)),
    ] {
        let workload: f64 = trace.epochs.iter().map(|e| e.workload_cost).sum();
        let churn: usize = trace
            .epochs
            .windows(2)
            .map(|w| {
                w[1].selection
                    .indexes()
                    .iter()
                    .filter(|k| !w[0].selection.contains(k))
                    .count()
            })
            .sum();
        println!(
            "{name}    {:.3e}    {workload:.3e}   {:.3e}   {churn}",
            trace.total_cost(),
            trace.total_reconfig(),
        );
    }
}
