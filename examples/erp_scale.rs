//! Large-scale advisor run: the Section IV-A enterprise scenario.
//!
//! ```bash
//! cargo run -p isel-examples --release --example erp_scale
//! ```
//!
//! Runs Algorithm 1 on the full ERP-shaped workload (500 tables, 4 204
//! attributes, 2 271 templates) and reports runtime, what-if call counts
//! and the top recommendations — demonstrating that the recursive strategy
//! handles "hundreds of tables" interactively.

use isel_core::{algorithm1, budget};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::erp::{self, ErpConfig};
use std::time::Instant;

fn main() {
    let cfg = ErpConfig::default();
    let workload = erp::generate(&cfg);
    println!(
        "ERP workload: {} tables, {} attributes, {} templates, {:.0}M executions",
        workload.schema().tables().len(),
        workload.schema().attr_count(),
        workload.query_count(),
        workload.total_frequency() as f64 / 1e6,
    );

    let whatif = CachingWhatIf::new(AnalyticalWhatIf::new(&workload));
    let a = budget::relative_budget(&whatif, 0.05); // 5% — Figure 4's range

    let start = Instant::now();
    let result = algorithm1::run(&whatif, &algorithm1::Options::new(a));
    let elapsed = start.elapsed();

    println!(
        "\nselected {} indexes in {:.2}s with {} what-if calls",
        result.selection.len(),
        elapsed.as_secs_f64(),
        whatif.stats().calls_issued,
    );
    println!(
        "cost {:.3e} -> {:.3e} ({:.1}% of baseline)",
        result.initial_cost,
        result.final_cost,
        100.0 * result.final_cost / result.initial_cost,
    );

    // Top ten indexes by memory.
    let mut by_mem: Vec<_> = result
        .selection
        .indexes()
        .iter()
        .map(|k| (whatif.index_memory_of(k), k))
        .collect();
    by_mem.sort_by_key(|(mem, _)| std::cmp::Reverse(*mem));
    println!("\nlargest recommended indexes:");
    for (mem, k) in by_mem.into_iter().take(10) {
        let t = workload.schema().attribute(k.leading()).table;
        println!(
            "  {:>8} MiB  {} {}",
            mem / (1024 * 1024),
            workload.schema().table(t).name,
            k,
        );
    }

    // Width histogram: how multi-attribute the selection is.
    let mut widths = [0usize; 8];
    for k in result.selection.indexes() {
        widths[k.width().min(7)] += 1;
    }
    println!("\nindex width histogram:");
    for (w, n) in widths.iter().enumerate().filter(|(_, &n)| n > 0) {
        println!("  width {w}: {n}");
    }
}
