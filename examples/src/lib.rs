//! Example host package; the runnable examples live next to this crate.
