//! End-to-end advisor session against the in-memory column store: measure
//! real executions, select indexes, create them, and verify the speedup by
//! executing the workload again (the Section IV-B loop in miniature).
//!
//! ```bash
//! cargo run -p isel-examples --release --example end_to_end
//! ```

use isel_core::{algorithm1, budget};
use isel_dbsim::measure::LiveWhatIf;
use isel_dbsim::{Database, MeasureConfig};
use isel_workload::synthetic::{self, SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A single 100-attribute table with 50k rows — small enough to execute
    // every probe in seconds.
    let cfg = SyntheticConfig {
        rows_base: 50_000,
        ..SyntheticConfig::end_to_end(7)
    };
    let workload = synthetic::generate(&cfg);
    let seed = 0xD1CE;

    // Baseline: execute the workload without indexes.
    let baseline_db = Database::populate(workload.schema(), seed);
    let mut rng = StdRng::seed_from_u64(1);
    let mut base_cost = 0.0;
    for (_, q) in workload.iter() {
        let bq = baseline_db.bind_from_row(q, &mut rng);
        base_cost += q.frequency() as f64 * baseline_db.execute(&bq).work.cost_units();
    }
    println!("baseline workload cost (no indexes): {base_cost:.3e} work units");

    // Advisor: Algorithm 1 against live measurements — every index it
    // wonders about is built and probed for real.
    let live = LiveWhatIf::new(
        Database::populate(workload.schema(), seed),
        workload.clone(),
        MeasureConfig::default(),
    );
    let a = budget::relative_budget(&live, 0.3);
    let result = algorithm1::run(&live, &algorithm1::Options::new(a));
    println!(
        "advisor built {} trial indexes, recommends {} (budget {} MiB):",
        live.indexes_built(),
        result.selection.len(),
        a / (1024 * 1024),
    );
    for k in result.selection.indexes() {
        println!("  {k}");
    }

    // Deploy: create exactly the recommendation and re-execute.
    let mut db = Database::populate(workload.schema(), seed);
    for k in result.selection.indexes() {
        db.create_index(k);
    }
    let mut rng = StdRng::seed_from_u64(1);
    let mut indexed_cost = 0.0;
    for (_, q) in workload.iter() {
        let bq = db.bind_from_row(q, &mut rng);
        indexed_cost += q.frequency() as f64 * db.execute(&bq).work.cost_units();
    }
    println!(
        "indexed workload cost: {indexed_cost:.3e} work units ({:.1}% of baseline, {:.1}x speedup)",
        100.0 * indexed_cost / base_cost,
        base_cost / indexed_cost,
    );
    assert!(indexed_cost < base_cost, "indexes must pay off end to end");
}
