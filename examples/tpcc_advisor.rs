//! The Figure-1 walkthrough: Algorithm 1 on the aggregated TPC-C workload.
//!
//! ```bash
//! cargo run -p isel-examples --release --example tpcc_advisor
//! ```
//!
//! Prints every construction step (which index is created or extended and
//! why), the queries each final index can cover, and the frontier — the
//! same narrative as the paper's Figure 1.

use isel_core::{algorithm1, budget};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf};
use isel_workload::tpcc;

fn main() {
    let (workload, _attrs) = tpcc::generate(100); // 100 warehouses
    let whatif = CachingWhatIf::new(AnalyticalWhatIf::new(&workload));
    let a = budget::relative_budget(&whatif, 0.5);

    println!("TPC-C aggregated workload: {} query templates", workload.query_count());
    for (j, q) in workload.iter() {
        let names: Vec<&str> = q
            .attrs()
            .iter()
            .map(|&x| workload.schema().attribute(x).name.as_str())
            .collect();
        println!(
            "  {j}: {}({})  x{}",
            workload.schema().table(q.table()).name,
            names.join(", "),
            q.frequency()
        );
    }

    let result = algorithm1::run(&whatif, &algorithm1::Options::new(a));

    println!("\nconstruction steps (budget = {} MiB):", a / (1024 * 1024));
    for (n, step) in result.steps.iter().enumerate() {
        let name = |k: &isel_workload::Index| {
            let t = workload.schema().attribute(k.leading()).table;
            let cols: Vec<&str> = k
                .attrs()
                .iter()
                .map(|&x| workload.schema().attribute(x).name.as_str())
                .collect();
            format!("{}({})", workload.schema().table(t).name, cols.join(", "))
        };
        match &step.action {
            algorithm1::StepAction::NewIndex(k) => {
                println!("  step {:>2}: create {}", n + 1, name(k))
            }
            algorithm1::StepAction::Extend { from, to } => {
                println!("  step {:>2}: extend {} -> {}", n + 1, name(from), name(to))
            }
            algorithm1::StepAction::Prune(ks) => {
                println!("  step {:>2}: prune {} unused indexes", n + 1, ks.len())
            }
        }
    }

    println!("\nfinal selection and coverable queries:");
    for k in result.selection.indexes() {
        let coverable: Vec<String> = workload
            .iter()
            .filter(|(_, q)| k.usable_prefix_len(q) > 0)
            .map(|(j, _)| j.to_string())
            .collect();
        let t = workload.schema().attribute(k.leading()).table;
        let cols: Vec<&str> = k
            .attrs()
            .iter()
            .map(|&x| workload.schema().attribute(x).name.as_str())
            .collect();
        println!(
            "  {}({})  covers {}",
            workload.schema().table(t).name,
            cols.join(", "),
            coverable.join(", ")
        );
    }

    println!(
        "\ncost {:.3e} -> {:.3e} ({:.1}%), memory {} / {} MiB",
        result.initial_cost,
        result.final_cost,
        100.0 * result.final_cost / result.initial_cost,
        result.selection.memory(&whatif) / (1024 * 1024),
        a / (1024 * 1024),
    );
}
