//! Solution-quality tests against the optimal reference: CoPhy with the
//! exhaustive candidate set is optimal for a given budget (Section III-B);
//! the paper claims H6 stays near-optimal while candidate-restricted CoPhy
//! degrades.

use isel_core::{algorithm1, budget, candidates, cophy};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_solver::cophy::CophyOptions;
use isel_workload::synthetic::{self, SyntheticConfig};
use std::time::Duration;

fn exact() -> CophyOptions {
    CophyOptions {
        mip_gap: 0.0,
        time_limit: Duration::from_secs(120),
        max_nodes: 5_000_000,
    }
}

fn workload(seed: u64) -> isel_workload::Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 1,
        attrs_per_table: 15,
        queries_per_table: 20,
        rows_base: 300_000,
        max_query_width: 5,
        update_fraction: 0.0,
        seed,
    })
}

#[test]
fn h6_is_near_optimal_across_seeds_and_budgets() {
    // The paper's Section IV-B finding: H6 within a few percent of the
    // optimum for tractable problems. These 15-attribute instances are far
    // lumpier than the paper's N=100/N=500 workloads, so individual points
    // get a 20% cap while the sweep average must stay within 8%.
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    let mut count = 0;
    for seed in [4u64, 7, 18] {
        let w = workload(seed);
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let pool = candidates::enumerate_imax(&w, 5).ids(est.pool());
        for share in [0.15, 0.3] {
            let a = budget::relative_budget(&est, share);
            let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
            // The exhaustive pool keeps one permutation per attribute set;
            // complement it with H6's own picks (Section III-B suggests
            // exactly this) so the reference is a true lower bound.
            let mut reference = pool.clone();
            reference.extend(h6.selection.ids(&est));
            let opt = cophy::solve(&est, &reference, a, &exact());
            assert!(opt.solution.status.finished(), "reference must solve");
            let ratio = h6.final_cost / opt.solution.objective;
            assert!(
                ratio >= 1.0 - 1e-9,
                "H6 {} below optimum {} (seed {seed}, w {share})",
                h6.final_cost,
                opt.solution.objective
            );
            assert!(
                ratio <= 1.20,
                "H6 {} too far from optimum {} (seed {seed}, w {share})",
                h6.final_cost,
                opt.solution.objective
            );
            worst = worst.max(ratio);
            sum += ratio;
            count += 1;
        }
    }
    let mean = sum / count as f64;
    assert!(mean <= 1.08, "mean H6/optimal ratio {mean:.4} too high");
    println!("worst H6/optimal ratio {worst:.4}, mean {mean:.4}");
}

#[test]
fn restricted_candidate_sets_degrade_cophy() {
    let w = workload(7);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let pool = candidates::enumerate_imax(&w, 5);
    let a = budget::relative_budget(&est, 0.3);
    let all = cophy::solve(&est, &pool.ids(est.pool()), a, &exact());
    let tiny: Vec<_> =
        candidates::select_candidates(&pool, 4, 4, candidates::CandidateRanking::Frequency)
            .iter()
            .map(|k| est.pool().intern(k))
            .collect();
    let restricted = cophy::solve(&est, &tiny, a, &exact());
    assert!(
        restricted.solution.objective >= all.solution.objective - 1e-9,
        "restricted CoPhy cannot beat the exhaustive set"
    );
}

#[test]
fn h6_beats_cophy_with_tiny_candidate_sets() {
    // The headline comparison of Figures 3 and 4.
    let mut h6_wins = 0;
    let mut rounds = 0;
    for seed in [11u64, 12, 13, 14] {
        let w = workload(seed);
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let pool = candidates::enumerate_imax(&w, 5);
        let a = budget::relative_budget(&est, 0.3);
        let tiny: Vec<_> =
            candidates::select_candidates(&pool, 4, 4, candidates::CandidateRanking::Frequency)
                .iter()
                .map(|k| est.pool().intern(k))
                .collect();
        let restricted = cophy::solve(&est, &tiny, a, &exact());
        let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
        rounds += 1;
        if h6.final_cost <= restricted.solution.objective + 1e-9 {
            h6_wins += 1;
        }
    }
    assert!(
        h6_wins >= rounds - 1,
        "H6 should dominate candidate-starved CoPhy ({h6_wins}/{rounds})"
    );
}

#[test]
fn gap_terminated_solutions_respect_their_gap() {
    let w = workload(5);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let pool = candidates::enumerate_imax(&w, 5).ids(est.pool());
    let a = budget::relative_budget(&est, 0.25);
    let run = cophy::solve(
        &est,
        &pool,
        a,
        &CophyOptions { mip_gap: 0.05, time_limit: Duration::from_secs(60), max_nodes: 5_000_000 },
    );
    assert!(run.solution.status.finished());
    assert!(run.solution.gap <= 0.05 + 1e-9);
    assert!(run.solution.objective >= run.solution.lower_bound - 1e-9);
}

#[test]
fn remark_one_accelerations_trade_little_quality() {
    let w = workload(21);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.3);
    let base = algorithm1::run(&est, &algorithm1::Options::new(a));
    let nbest = algorithm1::run(
        &est,
        &algorithm1::Options { n_best_single: Some(8), ..algorithm1::Options::new(a) },
    );
    let pruned = algorithm1::run(
        &est,
        &algorithm1::Options { prune_unused: true, ..algorithm1::Options::new(a) },
    );
    // n-best with more than half the attributes must stay close.
    assert!(nbest.final_cost <= base.final_cost * 1.25);
    // Pruning can only free memory for more useful indexes.
    assert!(pruned.final_cost <= base.final_cost * 1.05);
}
