//! Service-layer integration and property tests: sliding-window
//! aggregation invariants, replay determinism (the DESIGN.md §12
//! contract), and kill-then-restore convergence from a mid-run
//! checkpoint.

use isel_core::Trace;
use isel_service::{
    offline_adapt, offline_snapshots, Checkpoint, Daemon, DriftThresholds, EpochWindow,
    OverloadPolicy, ServiceConfig,
};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{AttrId, Query, Schema, TableId, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::path::PathBuf;

fn small_schema(attrs: usize) -> Schema {
    let mut b = isel_workload::SchemaBuilder::new();
    let t = b.table("t", 100_000);
    for i in 0..attrs {
        b.attribute(t, &format!("a{i}"), 1_000, 4);
    }
    b.finish()
}

fn workload() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 2,
        attrs_per_table: 10,
        queries_per_table: 12,
        rows_base: 60_000,
        max_query_width: 3,
        update_fraction: 0.1,
        seed: 77,
    })
}

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        epoch_events: 16,
        window_epochs: 2,
        max_templates: 64,
        drift: DriftThresholds::always_adapt(),
        threads,
        ..ServiceConfig::default()
    }
}

/// Frequency-weighted event sampling from a workload's templates.
fn sample_log(w: &Workload, n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = w.total_frequency();
    let mut out = String::new();
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let q = w
            .queries()
            .iter()
            .find(|q| {
                if pick < q.frequency() {
                    true
                } else {
                    pick -= q.frequency();
                    false
                }
            })
            .expect("pick < total");
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        let kind = if q.is_update() { ",\"kind\":\"Update\"" } else { "" };
        out.push_str(&format!(
            "{{\"table\":{},\"attrs\":[{}]{kind}}}\n",
            q.table().0,
            attrs.join(",")
        ));
    }
    out
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("isel_service_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Random event stream over a 6-attribute table: (attr-set, frequency)
/// pairs.
fn arb_events() -> impl Strategy<Value = Vec<(Vec<u32>, u64)>> {
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..6, 1..=3),
            1u64..50,
        ),
        1..80,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(set, f)| (set.into_iter().collect(), f))
            .collect()
    })
}

fn push_all(window: &mut EpochWindow, events: &[(Vec<u32>, u64)]) {
    for (attrs, freq) in events {
        let q = Query::new(
            TableId(0),
            attrs.iter().copied().map(AttrId).collect(),
            *freq,
        );
        window.push(&q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eviction never loses weight mass *inside* the window: the total
    /// mass always equals the sum of the masses of the events that are
    /// still in scope (the last `window_epochs` sealed epochs plus the
    /// current partial epoch).
    #[test]
    fn window_eviction_conserves_weight_mass(
        events in arb_events(),
        epoch_events in 1u64..8,
        window_epochs in 1usize..4,
    ) {
        let schema = small_schema(6);
        let mut window = EpochWindow::new(schema, epoch_events, window_epochs, 64);
        push_all(&mut window, &events);
        // Expected in-scope mass, computed independently: partition the
        // event stream into epochs of `epoch_events` and keep the last
        // `window_epochs` complete ones plus the trailing partial epoch.
        let per_epoch: Vec<u64> = events
            .chunks(epoch_events as usize)
            .map(|c| c.iter().map(|(_, f)| f).sum())
            .collect();
        let complete = events.len() / epoch_events as usize;
        let tail_partial: u64 = per_epoch.get(complete).copied().unwrap_or(0);
        let kept: u64 = per_epoch[..complete]
            .iter()
            .rev()
            .take(window_epochs)
            .sum();
        prop_assert_eq!(window.total_mass(), kept + tail_partial);
        // Sealed masses individually match the independent partition.
        let want: Vec<u64> = per_epoch[..complete]
            .iter()
            .rev()
            .take(window_epochs)
            .rev()
            .copied()
            .collect();
        prop_assert_eq!(window.sealed_masses(), want);
    }

    /// Aggregation within an epoch is a commutative sum: any permutation
    /// of one epoch's events yields an identical snapshot.
    #[test]
    fn epoch_snapshots_are_order_insensitive(
        events in arb_events(),
        seed in 0u64..1000,
    ) {
        let schema = small_schema(6);
        // One epoch holding every event, so the whole stream is a single
        // permutable unit.
        let n = events.len() as u64;
        let mut a = EpochWindow::new(schema.clone(), n, 2, 64);
        push_all(&mut a, &events);

        let mut shuffled = events.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut b = EpochWindow::new(schema, n, 2, 64);
        push_all(&mut b, &shuffled);

        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        prop_assert_eq!(snap_a.is_some(), snap_b.is_some());
        if let (Some(sa), Some(sb)) = (snap_a, snap_b) {
            prop_assert_eq!(sa.queries(), sb.queries());
        }
    }
}

/// Same log + same seed ⇒ bit-identical selection sequence and
/// checkpoint bytes at 1 and 4 worker threads, both matching the offline
/// `dynamic::adapt` reference.
#[test]
fn replay_is_deterministic_across_thread_counts() {
    let w = workload();
    let log = sample_log(&w, 80, 21);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let cfg = service_config(threads);
        let cp_path = tmp(&format!("replay_t{threads}.json"));
        std::fs::remove_file(&cp_path).ok();
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let report = daemon
            .run_reader(
                Cursor::new(log.clone()),
                OverloadPolicy::Block,
                Some(&cp_path),
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(report.dropped, 0, "blocking replay never drops");
        let cp_bytes = std::fs::read(&cp_path).unwrap();
        let selections: Vec<_> = report.epochs.iter().map(|e| e.selection.clone()).collect();
        runs.push((selections, cp_bytes));
    }
    let (sel_1, cp_1) = &runs[0];
    let (sel_4, cp_4) = &runs[1];
    assert_eq!(sel_1, sel_4, "selection sequence differs across thread counts");
    // The checkpoint embeds its config (whose `threads` field differs by
    // construction); everything else must be byte-identical. Compare via
    // the parsed form with the config normalized.
    let mut a = Checkpoint::from_json(std::str::from_utf8(cp_1).unwrap()).unwrap();
    let mut b = Checkpoint::from_json(std::str::from_utf8(cp_4).unwrap()).unwrap();
    a.config.threads = 0;
    b.config.threads = 0;
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());

    // Both match the offline dynamic::adapt reference.
    let cfg = service_config(1);
    let snaps = offline_snapshots(Cursor::new(log), w.schema(), &cfg).unwrap();
    let offline = offline_adapt(&snaps, &cfg);
    assert_eq!(sel_1.len(), offline.len());
    for (got, want) in sel_1.iter().zip(&offline) {
        assert_eq!(got, want);
    }
}

/// Kill the daemon mid-run, restore from its checkpoint, feed the rest
/// of the log: the final selection and epoch count equal the
/// uninterrupted run's.
#[test]
fn kill_then_restore_converges_to_uninterrupted_run() {
    let w = workload();
    let cfg = service_config(1);
    let log = sample_log(&w, 96, 8);
    let lines: Vec<&str> = log.lines().collect();

    // Uninterrupted reference run.
    let mut reference = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
    let ref_report = reference
        .run_reader(
            Cursor::new(log.clone()),
            OverloadPolicy::Block,
            None,
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(ref_report.epochs.len(), 6, "96 events / 16 per epoch");

    // Interrupted run: cut mid-epoch (40 events = 2 sealed epochs + 8
    // events of the third), checkpoint at the cut.
    let cp_path = tmp("kill_restore.json");
    std::fs::remove_file(&cp_path).ok();
    let head = format!("{}\n", lines[..40].join("\n"));
    let mut first = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
    let head_report = first
        .run_reader(
            Cursor::new(head),
            OverloadPolicy::Block,
            Some(&cp_path),
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(head_report.epochs.len(), 2);
    drop(first); // the "kill"

    // Restore and feed the remainder.
    let cp = Checkpoint::load(&cp_path).unwrap();
    assert_eq!(cp.ingested, 40);
    let mut resumed = Daemon::resume(w.schema().clone(), cfg.clone(), &cp).unwrap();
    assert_eq!(resumed.epoch(), 2);
    let tail = format!("{}\n", lines[40..].join("\n"));
    let tail_report = resumed
        .run_reader(
            Cursor::new(tail),
            OverloadPolicy::Block,
            Some(&cp_path),
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(tail_report.epochs.len(), 4, "epochs 2..6 tuned after restore");
    assert_eq!(tail_report.ingested, 96, "lifetime counter spans the restart");

    // Selections after the cut match the reference run epoch by epoch.
    for (resumed_epoch, ref_epoch) in tail_report.epochs.iter().zip(&ref_report.epochs[2..]) {
        assert_eq!(resumed_epoch.epoch, ref_epoch.epoch);
        assert_eq!(resumed_epoch.selection, ref_epoch.selection);
    }
    assert_eq!(tail_report.final_selection, ref_report.final_selection);

    // Restoring the final checkpoint and re-capturing is byte-stable.
    let final_cp = Checkpoint::load(&cp_path).unwrap();
    let roundtrip = Daemon::resume(w.schema().clone(), cfg, &final_cp).unwrap();
    assert_eq!(roundtrip.epoch(), 6);
    assert_eq!(roundtrip.selection(), &ref_report.final_selection);
}

/// A daemon trace passes `report --check`-grade validation: parseable
/// JSON lines whose per-run accounting sums hold.
#[test]
fn daemon_trace_passes_accounting_checks() {
    use isel_core::{JsonLinesSink, RunReport};
    let w = workload();
    let cfg = service_config(1);
    let log = sample_log(&w, 48, 4);
    let sink = JsonLinesSink::new(Vec::new());
    let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
    daemon
        .run_reader(
            Cursor::new(log),
            OverloadPolicy::Block,
            None,
            Trace::to(&sink),
        )
        .unwrap();
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let events = RunReport::parse_jsonl(&text).unwrap();
    assert!(!events.is_empty());
    let reports = RunReport::per_run(&events);
    assert!(reports.len() >= 3, "one run per tuned epoch");
    for report in &reports {
        if report.strategy.is_some() || report.run_end.is_some() {
            report.check_accounting().unwrap();
        }
    }
}
