//! Service-layer integration and property tests: sliding-window
//! aggregation invariants, replay determinism (the DESIGN.md §12
//! contract), and kill-then-restore convergence from a mid-run
//! checkpoint.

use isel_core::Trace;
use isel_service::{
    offline_adapt, offline_snapshots, Checkpoint, Daemon, DriftThresholds, EpochWindow,
    OverloadPolicy, ServiceConfig,
};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{AttrId, Query, Schema, TableId, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::path::PathBuf;

fn small_schema(attrs: usize) -> Schema {
    let mut b = isel_workload::SchemaBuilder::new();
    let t = b.table("t", 100_000);
    for i in 0..attrs {
        b.attribute(t, &format!("a{i}"), 1_000, 4);
    }
    b.finish()
}

fn workload() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 2,
        attrs_per_table: 10,
        queries_per_table: 12,
        rows_base: 60_000,
        max_query_width: 3,
        update_fraction: 0.1,
        seed: 77,
    })
}

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        epoch_events: 16,
        window_epochs: 2,
        max_templates: 64,
        drift: DriftThresholds::always_adapt(),
        threads,
        ..ServiceConfig::default()
    }
}

/// Frequency-weighted event sampling from a workload's templates.
fn sample_log(w: &Workload, n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = w.total_frequency();
    let mut out = String::new();
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let q = w
            .queries()
            .iter()
            .find(|q| {
                if pick < q.frequency() {
                    true
                } else {
                    pick -= q.frequency();
                    false
                }
            })
            .expect("pick < total");
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        let kind = if q.is_update() { ",\"kind\":\"Update\"" } else { "" };
        out.push_str(&format!(
            "{{\"table\":{},\"attrs\":[{}]{kind}}}\n",
            q.table().0,
            attrs.join(",")
        ));
    }
    out
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("isel_service_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Random event stream over a 6-attribute table: (attr-set, frequency)
/// pairs.
fn arb_events() -> impl Strategy<Value = Vec<(Vec<u32>, u64)>> {
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..6, 1..=3),
            1u64..50,
        ),
        1..80,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(set, f)| (set.into_iter().collect(), f))
            .collect()
    })
}

fn push_all(window: &mut EpochWindow, events: &[(Vec<u32>, u64)]) {
    for (attrs, freq) in events {
        let q = Query::new(
            TableId(0),
            attrs.iter().copied().map(AttrId).collect(),
            *freq,
        );
        window.push(&q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eviction never loses weight mass *inside* the window: the total
    /// mass always equals the sum of the masses of the events that are
    /// still in scope (the last `window_epochs` sealed epochs plus the
    /// current partial epoch).
    #[test]
    fn window_eviction_conserves_weight_mass(
        events in arb_events(),
        epoch_events in 1u64..8,
        window_epochs in 1usize..4,
    ) {
        let schema = small_schema(6);
        let mut window = EpochWindow::new(schema, epoch_events, window_epochs, 64);
        push_all(&mut window, &events);
        // Expected in-scope mass, computed independently: partition the
        // event stream into epochs of `epoch_events` and keep the last
        // `window_epochs` complete ones plus the trailing partial epoch.
        let per_epoch: Vec<u64> = events
            .chunks(epoch_events as usize)
            .map(|c| c.iter().map(|(_, f)| f).sum())
            .collect();
        let complete = events.len() / epoch_events as usize;
        let tail_partial: u64 = per_epoch.get(complete).copied().unwrap_or(0);
        let kept: u64 = per_epoch[..complete]
            .iter()
            .rev()
            .take(window_epochs)
            .sum();
        prop_assert_eq!(window.total_mass(), kept + tail_partial);
        // Sealed masses individually match the independent partition.
        let want: Vec<u64> = per_epoch[..complete]
            .iter()
            .rev()
            .take(window_epochs)
            .rev()
            .copied()
            .collect();
        prop_assert_eq!(window.sealed_masses(), want);
    }

    /// Aggregation within an epoch is a commutative sum: any permutation
    /// of one epoch's events yields an identical snapshot.
    #[test]
    fn epoch_snapshots_are_order_insensitive(
        events in arb_events(),
        seed in 0u64..1000,
    ) {
        let schema = small_schema(6);
        // One epoch holding every event, so the whole stream is a single
        // permutable unit.
        let n = events.len() as u64;
        let mut a = EpochWindow::new(schema.clone(), n, 2, 64);
        push_all(&mut a, &events);

        let mut shuffled = events.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut b = EpochWindow::new(schema, n, 2, 64);
        push_all(&mut b, &shuffled);

        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        prop_assert_eq!(snap_a.is_some(), snap_b.is_some());
        if let (Some(sa), Some(sb)) = (snap_a, snap_b) {
            prop_assert_eq!(sa.queries(), sb.queries());
        }
    }
}

/// Same log + same seed ⇒ bit-identical selection sequence and
/// checkpoint bytes at 1 and 4 worker threads, both matching the offline
/// `dynamic::adapt` reference.
#[test]
fn replay_is_deterministic_across_thread_counts() {
    let w = workload();
    let log = sample_log(&w, 80, 21);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let cfg = service_config(threads);
        let cp_path = tmp(&format!("replay_t{threads}.json"));
        std::fs::remove_file(&cp_path).ok();
        let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
        let report = daemon
            .run_reader(
                Cursor::new(log.clone()),
                OverloadPolicy::Block,
                Some(&cp_path),
                Trace::disabled(),
            )
            .unwrap();
        assert_eq!(report.dropped, 0, "blocking replay never drops");
        let cp_bytes = std::fs::read(&cp_path).unwrap();
        let selections: Vec<_> = report.epochs.iter().map(|e| e.selection.clone()).collect();
        runs.push((selections, cp_bytes));
    }
    let (sel_1, cp_1) = &runs[0];
    let (sel_4, cp_4) = &runs[1];
    assert_eq!(sel_1, sel_4, "selection sequence differs across thread counts");
    // The checkpoint embeds its config (whose `threads` field differs by
    // construction); everything else must be byte-identical. Compare via
    // the parsed form with the config normalized.
    let mut a = Checkpoint::from_json(std::str::from_utf8(cp_1).unwrap()).unwrap();
    let mut b = Checkpoint::from_json(std::str::from_utf8(cp_4).unwrap()).unwrap();
    a.config.threads = 0;
    b.config.threads = 0;
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());

    // Both match the offline dynamic::adapt reference.
    let cfg = service_config(1);
    let snaps = offline_snapshots(Cursor::new(log), w.schema(), &cfg).unwrap();
    let offline = offline_adapt(&snaps, &cfg);
    assert_eq!(sel_1.len(), offline.len());
    for (got, want) in sel_1.iter().zip(&offline) {
        assert_eq!(got, want);
    }
}

/// Kill the daemon mid-run, restore from its checkpoint, feed the rest
/// of the log: the final selection and epoch count equal the
/// uninterrupted run's.
#[test]
fn kill_then_restore_converges_to_uninterrupted_run() {
    let w = workload();
    let cfg = service_config(1);
    let log = sample_log(&w, 96, 8);
    let lines: Vec<&str> = log.lines().collect();

    // Uninterrupted reference run.
    let mut reference = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
    let ref_report = reference
        .run_reader(
            Cursor::new(log.clone()),
            OverloadPolicy::Block,
            None,
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(ref_report.epochs.len(), 6, "96 events / 16 per epoch");

    // Interrupted run: cut mid-epoch (40 events = 2 sealed epochs + 8
    // events of the third), checkpoint at the cut.
    let cp_path = tmp("kill_restore.json");
    std::fs::remove_file(&cp_path).ok();
    let head = format!("{}\n", lines[..40].join("\n"));
    let mut first = Daemon::new(w.schema().clone(), cfg.clone()).unwrap();
    let head_report = first
        .run_reader(
            Cursor::new(head),
            OverloadPolicy::Block,
            Some(&cp_path),
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(head_report.epochs.len(), 2);
    drop(first); // the "kill"

    // Restore and feed the remainder.
    let cp = Checkpoint::load(&cp_path).unwrap();
    assert_eq!(cp.ingested, 40);
    let mut resumed = Daemon::resume(w.schema().clone(), cfg.clone(), &cp).unwrap();
    assert_eq!(resumed.epoch(), 2);
    let tail = format!("{}\n", lines[40..].join("\n"));
    let tail_report = resumed
        .run_reader(
            Cursor::new(tail),
            OverloadPolicy::Block,
            Some(&cp_path),
            Trace::disabled(),
        )
        .unwrap();
    assert_eq!(tail_report.epochs.len(), 4, "epochs 2..6 tuned after restore");
    assert_eq!(tail_report.ingested, 96, "lifetime counter spans the restart");

    // Selections after the cut match the reference run epoch by epoch.
    for (resumed_epoch, ref_epoch) in tail_report.epochs.iter().zip(&ref_report.epochs[2..]) {
        assert_eq!(resumed_epoch.epoch, ref_epoch.epoch);
        assert_eq!(resumed_epoch.selection, ref_epoch.selection);
    }
    assert_eq!(tail_report.final_selection, ref_report.final_selection);

    // Restoring the final checkpoint and re-capturing is byte-stable.
    let final_cp = Checkpoint::load(&cp_path).unwrap();
    let roundtrip = Daemon::resume(w.schema().clone(), cfg, &final_cp).unwrap();
    assert_eq!(roundtrip.epoch(), 6);
    assert_eq!(roundtrip.selection(), &ref_report.final_selection);
}

/// A daemon trace passes `report --check`-grade validation: parseable
/// JSON lines whose per-run accounting sums hold.
#[test]
fn daemon_trace_passes_accounting_checks() {
    use isel_core::{JsonLinesSink, RunReport};
    let w = workload();
    let cfg = service_config(1);
    let log = sample_log(&w, 48, 4);
    let sink = JsonLinesSink::new(Vec::new());
    let mut daemon = Daemon::new(w.schema().clone(), cfg).unwrap();
    daemon
        .run_reader(
            Cursor::new(log),
            OverloadPolicy::Block,
            None,
            Trace::to(&sink),
        )
        .unwrap();
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let events = RunReport::parse_jsonl(&text).unwrap();
    assert!(!events.is_empty());
    let reports = RunReport::per_run(&events);
    assert!(reports.len() >= 3, "one run per tuned epoch");
    for report in &reports {
        if report.strategy.is_some() || report.run_end.is_some() {
            report.check_accounting().unwrap();
        }
    }
}

// --------------------------------------------------------------- sharding

use isel_service::{
    classify_line, offline_group_adapt, offline_group_snapshots, parse_line, InputLine, LineClass,
    Router,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn sharded_config(shards: u32) -> ServiceConfig {
    ServiceConfig {
        epoch_events: 8,
        window_epochs: 2,
        max_templates: 64,
        drift: DriftThresholds::always_adapt(),
        shards,
        ..ServiceConfig::default()
    }
}

/// Render template picks `(index, frequency)` as JSONL event lines.
fn render_log(w: &Workload, picks: &[(usize, u64)]) -> String {
    let qs = w.queries();
    picks
        .iter()
        .map(|&(i, f)| {
            let q = &qs[i % qs.len()];
            let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
            format!(
                "{{\"table\":{},\"attrs\":[{}],\"frequency\":{f}}}\n",
                q.table().0,
                attrs.join(",")
            )
        })
        .collect()
}

/// A fresh scratch directory per proptest case, so checkpoint manifests
/// from one case never leak into the next.
fn case_dir(prefix: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("isel_service_integration")
        .join(format!("{prefix}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline sharding guarantee (DESIGN.md §13): the same random
    /// multi-table log replayed at 1, 2 and 4 shards yields bit-identical
    /// per-group selection sequences and final merged selections, all
    /// matching the pure single-threaded per-group offline reference.
    #[test]
    fn sharded_replay_is_bit_identical_at_every_shard_count(
        picks in prop::collection::vec((0usize..10_000, 1u64..40), 24..72),
    ) {
        let w = workload();
        let log = render_log(&w, &picks);
        let reports: Vec<_> = [1u32, 2, 4]
            .iter()
            .map(|&shards| {
                let mut router =
                    Router::new(w.schema().clone(), sharded_config(shards)).unwrap();
                router
                    .run_reader(Cursor::new(log.clone()), OverloadPolicy::Block, None, &[])
                    .unwrap()
            })
            .collect();
        let baseline = &reports[0];
        for other in &reports[1..] {
            prop_assert_eq!(baseline.epochs.len(), other.epochs.len());
            for (a, b) in baseline.epochs.iter().zip(&other.epochs) {
                prop_assert_eq!(a.table, b.table);
                prop_assert_eq!(a.epoch, b.epoch);
                prop_assert_eq!(&a.selection, &b.selection);
                prop_assert_eq!(a.workload_cost.to_bits(), b.workload_cost.to_bits());
                prop_assert_eq!(a.reconfig_paid.to_bits(), b.reconfig_paid.to_bits());
            }
            prop_assert_eq!(&baseline.final_selection, &other.final_selection);
        }
        // The offline per-group reference agrees epoch by epoch.
        let cfg = sharded_config(1);
        let snaps = offline_group_snapshots(Cursor::new(log), w.schema(), &cfg).unwrap();
        let offline = offline_group_adapt(&snaps, &cfg);
        let total: usize = offline.values().map(Vec::len).sum();
        prop_assert_eq!(baseline.epochs.len(), total);
        for out in &baseline.epochs {
            let t = out.table.expect("sharded outcomes are table-scoped").0;
            prop_assert_eq!(&out.selection, &offline[&t][out.epoch as usize]);
        }
    }

    /// Kill a sharded run mid-stream, restore from its committed
    /// manifest at a *different* shard count, feed the remainder: the
    /// post-restore epochs and the final merged selection equal the
    /// uninterrupted single-shard run's.
    #[test]
    fn sharded_kill_then_restore_converges(
        picks in prop::collection::vec((0usize..10_000, 1u64..40), 48..80),
        resume_shards in 1u32..4,
    ) {
        let w = workload();
        let log = render_log(&w, &picks);
        let lines: Vec<&str> = log.lines().collect();
        let cut = lines.len() / 2;

        let mut reference = Router::new(w.schema().clone(), sharded_config(1)).unwrap();
        let ref_report = reference
            .run_reader(Cursor::new(log.clone()), OverloadPolicy::Block, None, &[])
            .unwrap();

        let dir = case_dir("kill-restore");
        let manifest = dir.join("manifest.json");
        let head = format!("{}\n", lines[..cut].join("\n"));
        let mut first = Router::new(w.schema().clone(), sharded_config(2)).unwrap();
        first
            .run_reader(Cursor::new(head), OverloadPolicy::Block, Some(&manifest), &[])
            .unwrap();
        drop(first); // the "kill"

        let mut resumed =
            Router::resume(w.schema().clone(), sharded_config(resume_shards), &manifest)
                .unwrap();
        let tail = format!("{}\n", lines[cut..].join("\n"));
        let tail_report = resumed
            .run_reader(Cursor::new(tail), OverloadPolicy::Block, Some(&manifest), &[])
            .unwrap();
        prop_assert_eq!(tail_report.ingested, lines.len() as u64);

        // Post-cut epochs match the uninterrupted run per (table, epoch).
        let reference_by_key: std::collections::BTreeMap<_, _> = ref_report
            .epochs
            .iter()
            .map(|o| ((o.table, o.epoch), o))
            .collect();
        for out in &tail_report.epochs {
            let want = reference_by_key[&(out.table, out.epoch)];
            prop_assert_eq!(&out.selection, &want.selection);
            prop_assert_eq!(out.workload_cost.to_bits(), want.workload_cost.to_bits());
        }
        prop_assert_eq!(&tail_report.final_selection, &ref_report.final_selection);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An arbitrary single line of ASCII (newlines swapped for spaces so the
/// value stays one line) — deliberately brace/quote-heavy garbage for
/// wire-fuzzing the parser and classifier.
fn arb_ascii_line(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..128, 0..max).prop_map(|codes| {
        codes
            .into_iter()
            .map(|b| match char::from_u32(b).unwrap() {
                '\n' | '\r' => ' ',
                c => c,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite guarantee: the JSONL parser and the routing classifier
    /// never panic, whatever bytes arrive on the wire.
    #[test]
    fn parser_and_classifier_never_panic(line in arb_ascii_line(200)) {
        let schema = small_schema(6);
        let _ = classify_line(&line);
        let _ = parse_line(&line, &schema);
    }

    /// The byte-scanning classifier agrees with the full parser on every
    /// line the parser accepts: a parsed query's table is exactly the
    /// classifier's routing key, however the fields are ordered and
    /// whatever decoy `"table"` keys hide inside strings or nested
    /// objects.
    #[test]
    fn classifier_agrees_with_the_parser(
        t in 0u16..6,
        attr in 0u32..6,
        freq in 1u64..100,
        table_first in 0u32..2,
        noise in arb_ascii_line(20),
    ) {
        let schema = small_schema(6);
        let noise_json = serde_json::to_string(&noise).unwrap();
        let line = if table_first == 1 {
            format!(
                "{{\"table\":{t},\"attrs\":[{attr}],\"note\":{noise_json},\
                 \"nested\":{{\"table\":9}},\"frequency\":{freq}}}"
            )
        } else {
            format!(
                "{{\"note\":{noise_json},\"nested\":{{\"table\":9}},\
                 \"frequency\":{freq},\"attrs\":[{attr}],\"table\":{t}}}"
            )
        };
        prop_assert_eq!(classify_line(&line), LineClass::Table(t));
        // On the single-table schema only t == 0 validates, but whenever
        // the parser does accept, the tables must agree.
        if let Ok(InputLine::Query(q)) = parse_line(&line, &schema) {
            prop_assert_eq!(q.table().0, t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A whole garbage stream through the sharded router: never panics,
    /// never errors, and every non-empty line is accounted exactly once
    /// as ingested or invalid.
    #[test]
    fn router_survives_garbage_streams(
        lines in prop::collection::vec(arb_ascii_line(60), 0..40),
        shards in 1u32..4,
    ) {
        let w = workload();
        let log: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let mut router = Router::new(w.schema().clone(), sharded_config(shards)).unwrap();
        let report = router
            .run_reader(Cursor::new(log), OverloadPolicy::Block, None, &[])
            .unwrap();
        let shutdown = lines
            .iter()
            .position(|l| matches!(parse_line(l.trim(), w.schema()),
                Ok(InputLine::Control(isel_service::Control::Shutdown))));
        let in_scope = shutdown.unwrap_or(lines.len());
        let nonempty = lines[..in_scope]
            .iter()
            .filter(|l| !l.trim().is_empty())
            .count() as u64;
        let controls = lines[..in_scope]
            .iter()
            .filter(|l| matches!(parse_line(l.trim(), w.schema()), Ok(InputLine::Control(_))))
            .count() as u64;
        prop_assert_eq!(report.ingested + report.invalid, nonempty - controls);
    }
}

// ------------------------------------------------- binary wire format

use isel_service::journal::{is_manifest, tag_line};
use isel_service::{
    convert, read_journal_bytes, Control, FrameEncoder, JournalConfig, JournalWriter, Record,
    RecordIter, WireFormat, FORMAT_VERSION, MAGIC,
};
use isel_workload::{tpcc, QueryKind};
use std::path::Path;

/// Run a router over `bytes` with a checkpoint manifest in a private
/// scratch directory; return the report plus every checkpoint file the
/// run committed, as sorted `(file name, bytes)` pairs. File names are
/// relative to the manifest, so two runs over equivalent streams must
/// produce identical pair lists.
fn run_with_checkpoints(
    w: &Workload,
    shards: u32,
    bytes: Vec<u8>,
    tag: &str,
) -> (isel_service::ServiceReport, Vec<(String, Vec<u8>)>) {
    let dir = case_dir(tag);
    let manifest = dir.join("cp.json");
    let mut router = Router::new(w.schema().clone(), sharded_config(shards)).unwrap();
    let report = router
        .run_reader(Cursor::new(bytes), OverloadPolicy::Block, Some(&manifest), &[])
        .unwrap();
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    std::fs::remove_dir_all(&dir).ok();
    (report, files)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole cross-encoding guarantee: the same random event
    /// stream replayed as JSONL and as its binary transcoding yields
    /// bit-identical epoch outcomes, final selections, ingest counters
    /// and checkpoint files at 1, 2 and 4 shards.
    #[test]
    fn binary_and_jsonl_replays_are_bit_identical(
        picks in prop::collection::vec((0usize..10_000, 1u64..40), 24..72),
    ) {
        let w = workload();
        let jsonl = render_log(&w, &picks);
        let binary = convert(jsonl.as_bytes(), WireFormat::Binary);
        prop_assert_eq!(binary.first(), Some(&MAGIC));
        for shards in [1u32, 2, 4] {
            let (a, cp_a) =
                run_with_checkpoints(&w, shards, jsonl.clone().into_bytes(), "xenc-jsonl");
            let (b, cp_b) = run_with_checkpoints(&w, shards, binary.clone(), "xenc-binary");
            prop_assert_eq!(a.ingested, b.ingested);
            prop_assert_eq!(a.invalid, b.invalid);
            prop_assert_eq!(a.epochs.len(), b.epochs.len());
            for (x, y) in a.epochs.iter().zip(&b.epochs) {
                prop_assert_eq!(x.table, y.table);
                prop_assert_eq!(x.epoch, y.epoch);
                prop_assert_eq!(&x.selection, &y.selection);
                prop_assert_eq!(x.workload_cost.to_bits(), y.workload_cost.to_bits());
                prop_assert_eq!(x.reconfig_paid.to_bits(), y.reconfig_paid.to_bits());
            }
            prop_assert_eq!(&a.final_selection, &b.final_selection);
            prop_assert_eq!(cp_a, cp_b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `convert` is lossless in both directions on mixed logs: canonical
    /// events, tagged events, controls and arbitrary garbage lines all
    /// survive jsonl → binary → jsonl byte-for-byte, and re-encoding the
    /// round-tripped text reproduces the binary bytes exactly.
    #[test]
    fn convert_round_trips_mixed_logs_losslessly(
        picks in prop::collection::vec((0usize..10_000, 1u64..40), 0..32),
        garbage in prop::collection::vec(arb_ascii_line(40), 0..8),
        seed in 0u64..1000,
    ) {
        let w = workload();
        let mut lines: Vec<String> =
            render_log(&w, &picks).lines().map(str::to_owned).collect();
        for g in garbage {
            if !g.trim().is_empty() {
                lines.push(g);
            }
        }
        lines.push("{\"control\":\"checkpoint\"}".to_owned());
        lines.push("{\"control\":\"status\"}".to_owned());
        lines.push("{\"conn\":3,\"seq\":9,\"table\":0,\"attrs\":[1,4]}".to_owned());
        lines.push("{\"conn\":3,\"seq\":10,\"table\":1,\"attrs\":[2],\"frequency\":5}".to_owned());
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..lines.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            lines.swap(i, j);
        }
        let log: String = lines.iter().map(|l| format!("{l}\n")).collect();

        let bin = convert(log.as_bytes(), WireFormat::Binary);
        let back = convert(&bin, WireFormat::Jsonl);
        prop_assert_eq!(std::str::from_utf8(&back).unwrap(), log.as_str());
        // Both directions are idempotent fixed points.
        prop_assert_eq!(convert(&back, WireFormat::Binary), bin);
        prop_assert_eq!(convert(log.as_bytes(), WireFormat::Jsonl), log.as_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite guarantee, binary edition: whatever bytes arrive, the
    /// record decoder never panics and decodes deterministically, and
    /// `convert` stays total in both directions.
    #[test]
    fn binary_decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let a: Vec<Record> = RecordIter::new(Cursor::new(bytes.clone())).collect();
        let b: Vec<Record> = RecordIter::new(Cursor::new(bytes.clone())).collect();
        prop_assert_eq!(a, b);
        let _ = convert(&bytes, WireFormat::Binary);
        let _ = convert(&bytes, WireFormat::Jsonl);
    }
}

/// Systematic corruption of a known-good two-frame stream: truncation at
/// every byte, every single-byte flip, an unknown version byte, a CRC
/// mismatch and an oversized length prefix all decode without panicking,
/// count invalid regions at deterministic positions, and never take the
/// healthy neighbouring frame down with them.
#[test]
fn binary_decoder_handles_truncation_and_corruption_deterministically() {
    let mut enc = FrameEncoder::new();
    enc.push_query(0, &[1, 2, 3], 7, QueryKind::Select);
    enc.push_query(1, &[0], 1, QueryKind::Update);
    enc.push_control(Control::Checkpoint, None);
    let mut frame1 = Vec::new();
    enc.flush_into(&mut frame1);
    enc.push_query(0, &[2], 3, QueryKind::Select);
    enc.push_raw(b"not json");
    let mut frame2 = Vec::new();
    enc.flush_into(&mut frame2);
    let stream = [frame1.clone(), frame2.clone()].concat();

    let full: Vec<Record> = RecordIter::new(Cursor::new(stream.clone())).collect();
    assert!(full.iter().all(|r| matches!(r, Record::Item(_))));
    assert!(full.len() >= 6, "defines + events + control + raw");
    let frame2_records: Vec<Record> =
        RecordIter::new(Cursor::new(frame2.clone())).collect();

    // Truncation at every byte: no panic, and a second pass agrees.
    for cut in 0..stream.len() {
        let a: Vec<Record> = RecordIter::new(Cursor::new(stream[..cut].to_vec())).collect();
        let b: Vec<Record> = RecordIter::new(Cursor::new(stream[..cut].to_vec())).collect();
        assert_eq!(a, b, "truncation at byte {cut} is nondeterministic");
    }

    // Every single-byte flip: no panic, deterministic.
    for i in 0..stream.len() {
        let mut bad = stream.clone();
        bad[i] ^= 0xFF;
        let a: Vec<Record> = RecordIter::new(Cursor::new(bad.clone())).collect();
        let b: Vec<Record> = RecordIter::new(Cursor::new(bad)).collect();
        assert_eq!(a, b, "flip at byte {i} is nondeterministic");
    }

    // Unknown version byte: the corrupt frame is counted and the decoder
    // resyncs; frame 2's raw item still comes through.
    let mut bad = stream.clone();
    assert_eq!(bad[0], MAGIC);
    assert_eq!(bad[1], FORMAT_VERSION);
    bad[1] = 0xEE;
    let recs: Vec<Record> = RecordIter::new(Cursor::new(bad)).collect();
    assert!(recs.contains(&Record::Corrupt));
    assert_eq!(
        recs.iter()
            .filter(|r| matches!(r, Record::Item(i) if *i == isel_service::WireItem::Raw(b"not json".to_vec())))
            .count(),
        1,
        "frame 2 must survive a frame 1 version error"
    );

    // CRC mismatch: exactly one corrupt marker, no resync, and frame 2
    // decodes bit-identically to its standalone decode.
    assert!(frame1[2] < 0x80, "payload length fits one varint byte");
    let mut bad = stream.clone();
    bad[7] ^= 0x01; // first payload byte of frame 1
    let recs: Vec<Record> = RecordIter::new(Cursor::new(bad)).collect();
    assert_eq!(recs[0], Record::Corrupt);
    assert_eq!(&recs[1..], &frame2_records[..]);

    // Oversized length prefix: corrupt header, then clean resync onto the
    // next magic byte.
    let mut bad = vec![MAGIC, FORMAT_VERSION, 0xFF, 0xFF, 0xFF, 0x7F];
    bad.extend_from_slice(&frame2);
    let recs: Vec<Record> = RecordIter::new(Cursor::new(bad)).collect();
    assert_eq!(recs[0], Record::Corrupt);
    assert_eq!(&recs[1..], &frame2_records[..]);
}

/// The checked-in binary fixture is frozen against its JSONL twin:
/// `journal convert` regenerates it byte-identically, converts it back
/// losslessly, it keeps the ≥10x size edge, and the daemon replays both
/// encodings to bit-identical epoch outcomes.
#[test]
fn golden_tpcc_fixture_matches_its_jsonl_twin() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples");
    let jsonl = std::fs::read(dir.join("tpcc_events.jsonl")).unwrap();
    let bin = std::fs::read(dir.join("tpcc_events.bin")).unwrap();
    assert_eq!(
        convert(&jsonl, WireFormat::Binary),
        bin,
        "examples/tpcc_events.bin is stale; regenerate with \
         `isel journal convert --log examples/tpcc_events.jsonl --to binary \
         --out examples/tpcc_events.bin`"
    );
    assert_eq!(convert(&bin, WireFormat::Jsonl), jsonl);
    assert!(
        bin.len() * 10 <= jsonl.len(),
        "binary fixture lost its 10x size edge: {} vs {} bytes",
        bin.len(),
        jsonl.len()
    );

    let w = tpcc::generate(50).0;
    let run = |bytes: &[u8]| {
        let mut daemon = Daemon::new(w.schema().clone(), service_config(1)).unwrap();
        daemon
            .run_reader(
                Cursor::new(bytes.to_vec()),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap()
    };
    let a = run(&jsonl);
    let b = run(&bin);
    assert_eq!(a.ingested, b.ingested);
    assert_eq!(a.invalid, b.invalid);
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.selection, y.selection);
        assert_eq!(x.workload_cost.to_bits(), y.workload_cost.to_bits());
        assert_eq!(x.reconfig_paid.to_bits(), y.reconfig_paid.to_bits());
    }
    assert_eq!(a.final_selection, b.final_selection);
}

/// Kill a rotating journal mid-segment (the final manifest commit never
/// lands) and recover: every acknowledged line comes back, in order,
/// with its connection/sequence tag — in both encodings, across the
/// shared-dictionary segment boundary.
#[test]
fn rotated_journal_survives_a_mid_segment_kill() {
    for format in [WireFormat::Jsonl, WireFormat::Binary] {
        let dir = case_dir("rotate-kill");
        let path = dir.join("journal");
        let config = JournalConfig { path: path.clone(), format, max_bytes: Some(96) };
        let mut writer = JournalWriter::create(config).unwrap();
        let mut lines = Vec::new();
        for i in 0..40u64 {
            let line = format!(
                "{{\"table\":{},\"attrs\":[{}],\"frequency\":{}}}",
                i % 2,
                i % 6,
                i % 5 + 2
            );
            writer.write_line(1, i + 1, &line);
            lines.push(line);
        }
        assert_eq!(writer.errors(), 0);
        writer.abandon(); // the "kill": data flushed, manifest not committed

        let manifest = std::fs::read(&path).unwrap();
        assert!(is_manifest(&manifest), "{format:?}: base path holds the manifest");
        assert!(
            dir.join("journal.seg-000001").exists(),
            "{format:?}: 40 events across 96-byte segments must rotate at least once"
        );

        let bytes = read_journal_bytes(&path).unwrap();
        let text = String::from_utf8(convert(&bytes, WireFormat::Jsonl)).unwrap();
        let got: Vec<&str> = text.lines().collect();
        assert_eq!(got.len(), lines.len(), "{format:?}: no acknowledged line may be lost");
        for (i, (g, want)) in got.iter().zip(&lines).enumerate() {
            assert_eq!(*g, tag_line(1, i as u64 + 1, want), "{format:?}: line {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// --------------------------------------------- observed-cost feedback

/// Interleave an observed-cost probe after every `every`-th query pick,
/// re-stating the just-picked template with a synthetic measured cost.
fn render_log_with_probes(w: &Workload, picks: &[(usize, u64)], every: usize) -> String {
    let qs = w.queries();
    let mut out = String::new();
    for (n, &(i, f)) in picks.iter().enumerate() {
        let q = &qs[i % qs.len()];
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        out.push_str(&format!(
            "{{\"table\":{},\"attrs\":[{}],\"frequency\":{f}}}\n",
            q.table().0,
            attrs.join(",")
        ));
        if (n + 1) % every == 0 {
            out.push_str(&format!(
                "{{\"table\":{},\"attrs\":[{}],\"observed_cost\":{}}}\n",
                q.table().0,
                attrs.join(","),
                (n % 7 + 1) as f64 * 3.5
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The disabled-calibration contract (DESIGN.md §17): observed-cost
    /// probes are invisible to selection when calibration is off. The
    /// probe-interleaved log replays bit-identically to the probe-free
    /// log at 1, 2 and 4 shards, and probes never count as ingested
    /// events.
    #[test]
    fn disabled_calibration_ignores_observed_probes(
        picks in prop::collection::vec((0usize..10_000, 1u64..40), 24..72),
        every in 2usize..6,
    ) {
        let w = workload();
        let plain = render_log(&w, &picks);
        let with_probes = render_log_with_probes(&w, &picks, every);

        let mut reference = Router::new(w.schema().clone(), sharded_config(1)).unwrap();
        let baseline = reference
            .run_reader(Cursor::new(plain), OverloadPolicy::Block, None, &[])
            .unwrap();
        for shards in [1u32, 2, 4] {
            let mut router =
                Router::new(w.schema().clone(), sharded_config(shards)).unwrap();
            let report = router
                .run_reader(Cursor::new(with_probes.clone()), OverloadPolicy::Block, None, &[])
                .unwrap();
            // Probes must never count as ingested events.
            prop_assert_eq!(report.ingested, picks.len() as u64);
            prop_assert_eq!(report.invalid, 0);
            prop_assert_eq!(baseline.epochs.len(), report.epochs.len());
            for (a, b) in baseline.epochs.iter().zip(&report.epochs) {
                prop_assert_eq!(a.table, b.table);
                prop_assert_eq!(a.epoch, b.epoch);
                prop_assert_eq!(&a.selection, &b.selection);
                prop_assert_eq!(a.workload_cost.to_bits(), b.workload_cost.to_bits());
                prop_assert_eq!(a.reconfig_paid.to_bits(), b.reconfig_paid.to_bits());
            }
            prop_assert_eq!(&baseline.final_selection, &report.final_selection);
        }
    }
}

/// The observed-cost fixture pair is frozen like the plain TPC-C pair:
/// `journal convert` regenerates the binary twin byte-identically and
/// converts it back losslessly (probes ride as raw-framed lines), and a
/// calibrated daemon replays both encodings to the same learned
/// calibration table with every probe counted.
#[test]
fn golden_observed_fixture_matches_its_jsonl_twin() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../examples");
    let jsonl = std::fs::read(dir.join("tpcc_observed.jsonl")).unwrap();
    let bin = std::fs::read(dir.join("tpcc_observed.bin")).unwrap();
    assert_eq!(
        convert(&jsonl, WireFormat::Binary),
        bin,
        "examples/tpcc_observed.bin is stale; regenerate with \
         `isel journal convert --log examples/tpcc_observed.jsonl --to binary \
         --out examples/tpcc_observed.bin`"
    );
    assert_eq!(convert(&bin, WireFormat::Jsonl), jsonl);
    assert!(
        bin.len() * 3 <= jsonl.len(),
        "binary twin lost its size edge: {} vs {} bytes",
        bin.len(),
        jsonl.len()
    );

    let w = tpcc::generate(50).0;
    let run = |bytes: &[u8]| {
        let mut config = service_config(1);
        config.calibration.enabled = true;
        let mut daemon = Daemon::new(w.schema().clone(), config).unwrap();
        let report = daemon
            .run_reader(
                Cursor::new(bytes.to_vec()),
                OverloadPolicy::Block,
                None,
                Trace::disabled(),
            )
            .unwrap();
        (report, daemon.calibration())
    };
    let (a, cal_a) = run(&jsonl);
    let (b, cal_b) = run(&bin);
    assert_eq!(a.ingested, 640, "probes never count as ingested events");
    assert_eq!(a.invalid, 0, "every probe line must parse");
    assert_eq!(a.ingested, b.ingested);
    assert_eq!(a.invalid, b.invalid);
    assert_eq!(cal_a, cal_b, "both encodings learn the same table");
    assert!(cal_a.contains("\"probes\":80"), "all 80 probes counted: {cal_a}");
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.selection, y.selection);
        assert_eq!(x.workload_cost.to_bits(), y.workload_cost.to_bits());
    }
    assert_eq!(a.final_selection, b.final_selection);
}
