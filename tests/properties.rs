//! Property-based tests across crates: cost-model invariants, solver
//! optimality on random instances, and Algorithm 1 invariants on random
//! workloads.

use isel_core::{algorithm1, budget, candidates, cophy};
use isel_costmodel::{model, AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_solver::cophy::CophyOptions;
use isel_workload::{AttrId, Index, Query, SchemaBuilder, TableId, Workload};
use proptest::prelude::*;
use std::time::Duration;

/// Strategy: a random single-table workload with n rows, a handful of
/// attributes of random cardinality, and a few random queries.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..8, 1u64..6)
        .prop_flat_map(|(n_attrs, rows_k)| {
            let rows = rows_k * 10_000;
            let attrs = prop::collection::vec((1u64..=100_000, prop::sample::select(vec![1u32, 2, 4, 8])), n_attrs..=n_attrs);
            let queries = prop::collection::vec(
                (
                    prop::collection::btree_set(0..n_attrs as u32, 1..=n_attrs.min(5)),
                    1u64..1_000,
                ),
                1..12,
            );
            (Just(rows), attrs, queries)
        })
        .prop_map(|(rows, attrs, queries)| {
            let mut b = SchemaBuilder::new();
            let t = b.table("t", rows);
            for (i, (d, a)) in attrs.iter().enumerate() {
                b.attribute(t, &format!("a{i}"), (*d).min(rows).max(1), *a);
            }
            let schema = b.finish();
            let qs = queries
                .into_iter()
                .map(|(set, freq)| {
                    Query::new(TableId(0), set.into_iter().map(AttrId).collect(), freq)
                })
                .collect();
            Workload::new(schema, qs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An index never makes a query more expensive than scanning, and
    /// config costs are monotone in the configuration.
    #[test]
    fn config_costs_are_monotone(w in arb_workload()) {
        let est = AnalyticalWhatIf::new(&w);
        let n = w.schema().attr_count() as u32;
        let k0 = Index::single(AttrId(0));
        let k1 = Index::single(AttrId(n - 1));
        for (j, _) in w.iter() {
            let f0 = est.unindexed_cost(j);
            let c1 = est.config_cost_of(j, std::slice::from_ref(&k0));
            let c2 = est.config_cost_of(j, &[k0.clone(), k1.clone()]);
            prop_assert!(c1 <= f0 + 1e-9);
            prop_assert!(c2 <= c1 + 1e-9);
        }
    }

    /// Index memory is strictly monotone under extension and positive.
    #[test]
    fn index_memory_monotone(w in arb_workload()) {
        let schema = w.schema();
        let n = schema.attr_count() as u32;
        let mut k = Index::single(AttrId(0));
        let mut last = model::index_memory(schema, &k);
        prop_assert!(last > 0);
        for i in 1..n.min(4) {
            k = k.extended(AttrId(i));
            let m = model::index_memory(schema, &k);
            prop_assert!(m > last);
            last = m;
        }
    }

    /// Algorithm 1 respects budgets, never increases cost, and its step
    /// log replays to the final selection.
    #[test]
    fn algorithm1_invariants(w in arb_workload(), share in 0.05f64..0.8) {
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let a = budget::relative_budget(&est, share);
        let run = algorithm1::run(&est, &algorithm1::Options::new(a));
        prop_assert!(run.selection.memory(&est) <= a);
        prop_assert!(run.final_cost <= run.initial_cost + 1e-9);
        let replay = algorithm1::selection_at(&run.steps, a);
        prop_assert_eq!(replay, run.selection.clone());
        // Evaluated cost of the final selection matches the reported one.
        let eval = run.selection.cost(&est);
        prop_assert!((eval - run.final_cost).abs() <= 1e-6 * run.initial_cost.max(1.0));
    }

    /// H6 is sandwiched between the exhaustive-candidate optimum and the
    /// unindexed baseline on *arbitrary* random workloads.
    ///
    /// No relative-quality bound is asserted here on purpose: Section V of
    /// the paper spells out that when its structural properties fail —
    /// e.g. every attribute near-unique and only one index fitting the
    /// budget — the greedy construction can pick a denser-but-smaller step
    /// and miss a lumpy optimum. Random generators hit exactly those
    /// adversarial corners; the near-optimality claims are asserted on the
    /// paper's structured workloads in `tests/quality.rs`.
    #[test]
    fn h6_sandwiched_between_optimal_and_baseline(w in arb_workload()) {
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let a = budget::relative_budget(&est, 0.3);
        let pool = candidates::enumerate_imax(&w, 5).ids(est.pool());
        prop_assume!(pool.len() <= 60); // keep the exact solve fast
        let opt = cophy::solve(&est, &pool, a, &CophyOptions {
            mip_gap: 0.0,
            time_limit: Duration::from_secs(30),
            max_nodes: 2_000_000,
        });
        prop_assume!(opt.solution.status.finished());
        let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
        // One-permutation-per-set reference: H6 may undercut by a sliver.
        prop_assert!(h6.final_cost >= opt.solution.objective * 0.99 - 1e-6);
        let base = est.workload_cost(&[]);
        prop_assert!(h6.final_cost <= base + 1e-9);
    }

    /// Workload compression never panics, whatever the weight function
    /// returns — NaN weights rank last instead of aborting the sort.
    #[test]
    fn top_k_by_weight_never_panics_on_nan_weights(
        w in arb_workload(),
        k in 0usize..32,
        nan_mask in 0u32..=u32::MAX,
    ) {
        let kept = isel_workload::compress::top_k_by_weight(&w, k, |q| {
            if nan_mask & (1 << (q.frequency() % 32)) != 0 {
                f64::NAN
            } else {
                q.frequency() as f64
            }
        });
        prop_assert!(kept.query_count() <= w.query_count());
        prop_assert!(kept.query_count() <= k);
        // An all-NaN scorer is the degenerate corner: still no panic.
        let none = isel_workload::compress::top_k_by_weight(&w, k, |_| f64::NAN);
        prop_assert!(none.query_count() <= k);
    }

    /// The 0/1 knapsack never panics for adversarial values (NaN, ±∞) or
    /// byte-denominated budgets near `u64::MAX`; it reports which path ran
    /// and its choice always fits the capacity.
    #[test]
    fn knapsack_never_panics_on_nan_values_or_huge_budgets(
        raw in prop::collection::vec(
            (0u8..4, -1e12f64..1e12, 0u64..=u64::MAX),
            0..24,
        ),
        capacity in 0u64..=u64::MAX,
    ) {
        use isel_solver::knapsack::{self, Item, SolvePath};
        let items: Vec<Item> = raw
            .iter()
            .map(|&(kind, v, weight)| Item {
                value: match kind {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    _ => v,
                },
                weight,
            })
            .collect();
        let s = knapsack::solve_01(&items, capacity);
        let used: u128 = s.chosen.iter().map(|&i| items[i].weight as u128).sum();
        prop_assert!(used <= capacity as u128, "chosen set exceeds capacity");
        prop_assert!(s.chosen.windows(2).all(|p| p[0] < p[1]), "indices not ascending");
        for &i in &s.chosen {
            prop_assert!(i < items.len());
        }
        // Capacities whose DP table cannot fit must take the greedy path.
        let cells = (items.len() as u128).max(1) * (capacity as u128 + 1);
        if cells > knapsack::DP_CELL_LIMIT {
            prop_assert_eq!(s.path, SolvePath::GreedyFallback);
        } else {
            prop_assert_eq!(s.path, SolvePath::ExactDp);
        }
        // NaN-valued items are deterministically unattractive, never chosen.
        for &i in &s.chosen {
            prop_assert!(!items[i].value.is_nan());
        }
    }

    /// The caching decorator is semantically transparent.
    #[test]
    fn caching_is_transparent(w in arb_workload()) {
        let plain = AnalyticalWhatIf::new(&w);
        let cached = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let n = w.schema().attr_count() as u32;
        let k = Index::single(AttrId(n / 2));
        for (j, _) in w.iter() {
            prop_assert_eq!(plain.unindexed_cost(j), cached.unindexed_cost(j));
            prop_assert_eq!(plain.index_cost_of(j, &k), cached.index_cost_of(j, &k));
            prop_assert_eq!(plain.index_cost_of(j, &k), cached.index_cost_of(j, &k));
        }
    }
}
