//! Robustness and failure-injection tests: noisy oracles, degenerate
//! workloads, and starved solver limits must never produce invalid
//! selections or panics.

use isel_core::{algorithm1, budget, candidates, cophy, heuristics};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer, WhatIfStats};
use isel_solver::cophy::CophyOptions;
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{AttrId, Index, Query, QueryId, SchemaBuilder, TableId, Workload};
use std::time::Duration;

/// Deterministically noisy oracle: every cost is perturbed by up to ±20%
/// (keyed by query and index so repeated calls agree) — a stand-in for the
/// "too often inaccurate" cost estimations of real optimizers [19].
struct NoisyWhatIf<W> {
    inner: W,
}

impl<W> NoisyWhatIf<W> {
    fn factor(seed: u64) -> f64 {
        // splitmix-style hash to [0.8, 1.2].
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
        0.8 + 0.4 * u
    }
}

impl<W: WhatIfOptimizer> WhatIfOptimizer for NoisyWhatIf<W> {
    fn workload(&self) -> &Workload {
        self.inner.workload()
    }
    fn pool(&self) -> &isel_workload::IndexPool {
        self.inner.pool()
    }
    fn unindexed_cost(&self, q: QueryId) -> f64 {
        self.inner.unindexed_cost(q) * Self::factor(q.0 as u64)
    }
    fn index_cost(&self, q: QueryId, k: isel_workload::IndexId) -> Option<f64> {
        // Seed from the resolved attribute list, not the id, so the noise
        // is a pure function of the (query, index) content.
        let seed = self
            .pool()
            .attrs(k)
            .iter()
            .fold(q.0 as u64, |acc, a| acc.wrapping_mul(31).wrapping_add(a.0 as u64));
        self.inner.index_cost(q, k).map(|c| c * Self::factor(seed))
    }
    fn index_memory(&self, k: isel_workload::IndexId) -> u64 {
        self.inner.index_memory(k)
    }
    fn maintenance_cost(&self, k: isel_workload::IndexId) -> f64 {
        self.inner.maintenance_cost(k)
    }
    fn stats(&self) -> WhatIfStats {
        self.inner.stats()
    }
}

fn workload() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 2,
        attrs_per_table: 15,
        queries_per_table: 20,
        rows_base: 200_000,
        max_query_width: 5,
        update_fraction: 0.0,
        seed: 55,
    })
}

#[test]
fn noisy_estimates_still_yield_valid_near_good_selections() {
    let w = workload();
    let clean = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let noisy = NoisyWhatIf { inner: CachingWhatIf::new(AnalyticalWhatIf::new(&w)) };
    let a = budget::relative_budget(&clean, 0.3);

    let clean_run = algorithm1::run(&clean, &algorithm1::Options::new(a));
    let noisy_run = algorithm1::run(&noisy, &algorithm1::Options::new(a));
    assert!(noisy_run.selection.memory(&clean) <= a);
    // Evaluate both selections under the clean model: noise costs at most
    // a modest factor.
    let clean_cost = clean_run.selection.cost(&clean);
    let noisy_cost = noisy_run.selection.cost(&clean);
    assert!(
        noisy_cost <= clean_cost * 2.0 + 1e-9,
        "noise degraded too far: {noisy_cost} vs {clean_cost}"
    );
}

#[test]
fn degenerate_workloads_do_not_panic() {
    // Single attribute, single query.
    let mut b = SchemaBuilder::new();
    let t = b.table("t", 10);
    let a0 = b.attribute(t, "a", 2, 1);
    let w = Workload::new(b.finish(), vec![Query::new(TableId(0), vec![a0], 1)]);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 1.0);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    assert!(run.selection.len() <= 1);

    // Identical queries, huge frequencies.
    let mut b = SchemaBuilder::new();
    let t = b.table("t", 1_000_000);
    let a0 = b.attribute(t, "a", 1_000_000, 8);
    let q = Query::new(TableId(0), vec![a0], u32::MAX as u64);
    let w = Workload::new(b.finish(), vec![q.clone(), q.clone(), q]);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 1.0);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    assert!(run.final_cost <= run.initial_cost);
}

#[test]
fn exact_fit_budgets_are_handled() {
    let w = workload();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    // Budget exactly one specific index's footprint.
    let k = Index::single(AttrId(3));
    let a = est.index_memory_of(&k);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    assert!(run.selection.memory(&est) <= a);
}

#[test]
fn starved_solver_limits_return_feasible_incumbents() {
    let w = workload();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let pool = candidates::enumerate_imax(&w, 3).ids(est.pool());
    let a = budget::relative_budget(&est, 0.3);
    for opts in [
        CophyOptions { mip_gap: 0.0, time_limit: Duration::from_millis(0), max_nodes: usize::MAX },
        CophyOptions { mip_gap: 0.0, time_limit: Duration::from_secs(60), max_nodes: 1 },
    ] {
        let run = cophy::solve(&est, &pool, a, &opts);
        assert!(run.selection.memory(&est) <= a);
        assert!(run.solution.objective.is_finite());
        assert!(run.solution.objective >= run.solution.lower_bound - 1e-9);
    }
}

#[test]
fn heuristics_survive_single_candidate_pools() {
    let w = workload();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let lone = vec![est.pool().intern_single(AttrId(0))];
    let a = budget::relative_budget(&est, 1.0);
    for sel in [
        heuristics::h1(&lone, &est, a),
        heuristics::h4(&lone, &est, a, true),
        heuristics::h5(&lone, &est, a),
    ] {
        assert!(sel.len() <= 1);
    }
    // Empty candidate pool.
    let empty: Vec<isel_workload::IndexId> = vec![];
    assert!(heuristics::h1(&empty, &est, a).is_empty());
    assert!(heuristics::skyline_filter(&empty, &est).is_empty());
}

#[test]
fn noisy_oracle_keeps_heuristics_budget_feasible() {
    let w = workload();
    let noisy = NoisyWhatIf { inner: CachingWhatIf::new(AnalyticalWhatIf::new(&w)) };
    let pool = candidates::enumerate_imax(&w, 3).ids(noisy.pool());
    let a = budget::relative_budget(&noisy, 0.25);
    for sel in [
        heuristics::h4(&pool, &noisy, a, false),
        heuristics::h5(&pool, &noisy, a),
    ] {
        assert!(sel.memory(&noisy) <= a);
    }
}
