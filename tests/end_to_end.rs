//! End-to-end tests against the columnar engine (the Section IV-B loop in
//! miniature): measured costs in, selections out, verified by execution.

use isel_core::{algorithm1, budget, candidates, heuristics};
use isel_costmodel::{CachingWhatIf, WhatIfOptimizer};
use isel_dbsim::measure::LiveWhatIf;
use isel_dbsim::{measure_workload, Database, MeasureConfig};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xE2E;

fn tiny_workload() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 1,
        attrs_per_table: 20,
        queries_per_table: 25,
        rows_base: 5_000,
        max_query_width: 5,
        update_fraction: 0.0,
        seed: 4,
    })
}

/// Execute the workload with exactly `sel` and report total work units.
fn executed_cost(workload: &Workload, sel: &isel_core::Selection) -> f64 {
    let mut db = Database::populate(workload.schema(), SEED);
    for k in sel.indexes() {
        db.create_index(k);
    }
    let mut rng = StdRng::seed_from_u64(1);
    workload
        .iter()
        .map(|(_, q)| {
            let bq = db.bind_from_row(q, &mut rng);
            q.frequency() as f64 * db.execute(&bq).work.cost_units()
        })
        .sum()
}

#[test]
fn measured_costs_drive_useful_selections() {
    let w = tiny_workload();
    let pool = candidates::enumerate_imax(&w, 3).indexes();
    let mut db = Database::populate(w.schema(), SEED);
    let table = measure_workload(&mut db, &w, &pool, &MeasureConfig::default());
    let est = CachingWhatIf::new(table);
    let a = budget::relative_budget(&est, 0.4);

    let ids: Vec<_> = pool.iter().map(|k| est.pool().intern(k)).collect();
    let sel = heuristics::h5(&ids, &est, a);
    assert!(!sel.is_empty());
    let base = executed_cost(&w, &isel_core::Selection::empty());
    let with = executed_cost(&w, &sel);
    assert!(
        with < base,
        "measured-cost selection must speed up execution: {with} vs {base}"
    );
}

#[test]
fn h6_on_live_measurements_speeds_up_execution() {
    let w = tiny_workload();
    let live = LiveWhatIf::new(
        Database::populate(w.schema(), SEED),
        w.clone(),
        MeasureConfig::default(),
    );
    let a = budget::relative_budget(&live, 0.4);
    let run = algorithm1::run(&live, &algorithm1::Options::new(a));
    assert!(!run.selection.is_empty());
    let base = executed_cost(&w, &isel_core::Selection::empty());
    let with = executed_cost(&w, &run.selection);
    assert!(with < base, "H6-on-measurements must pay off: {with} vs {base}");
    // The oracle should have built clearly fewer indexes than the
    // exhaustive candidate pool would require.
    let pool_size = candidates::enumerate_imax(&w, 3).len();
    assert!(
        live.indexes_built() < pool_size,
        "live probing ({}) should stay below |I_max| ({pool_size})",
        live.indexes_built()
    );
}

#[test]
fn measured_and_analytical_rankings_agree_on_direction() {
    // Section IV-B's point: the approach does not depend on the exemplary
    // cost model. The executed cost of H6's selection must improve over
    // the executed cost of a clearly worse (rule-based) selection chosen
    // with the same measured estimator.
    let w = tiny_workload();
    let pool = candidates::enumerate_imax(&w, 3).indexes();
    let mut db = Database::populate(w.schema(), SEED);
    let table = measure_workload(&mut db, &w, &pool, &MeasureConfig::default());
    let est = CachingWhatIf::new(table);
    let a = budget::relative_budget(&est, 0.3);

    let ids: Vec<_> = pool.iter().map(|k| est.pool().intern(k)).collect();
    let h2 = heuristics::h2(&ids, &est, a);
    let h5 = heuristics::h5(&ids, &est, a);
    let c2 = executed_cost(&w, &h2);
    let c5 = executed_cost(&w, &h5);
    assert!(
        c5 <= c2 * 1.10,
        "benefit-driven H5 ({c5}) should not lose badly to rule-based H2 ({c2})"
    );
}

#[test]
fn index_memory_measurements_track_the_analytic_formula() {
    let w = tiny_workload();
    let pool = candidates::enumerate_imax(&w, 2).indexes();
    let mut db = Database::populate(w.schema(), SEED);
    let table = measure_workload(&mut db, &w, &pool, &MeasureConfig::default());
    for k in pool.iter().take(20) {
        let measured = table.index_memory_of(k);
        let analytic = isel_costmodel::model::index_memory(w.schema(), k);
        // Same order of magnitude: the engine stores 4-byte row ids and
        // materialized keys, the formula packs row ids to ⌈log2 n⌉ bits.
        let ratio = measured as f64 / analytic as f64;
        assert!(
            (0.5..=4.0).contains(&ratio),
            "memory mismatch for {k}: measured {measured}, analytic {analytic}"
        );
    }
}

#[test]
fn executed_costs_are_deterministic_for_work_units() {
    let w = tiny_workload();
    let sel = isel_core::Selection::from_indexes(vec![isel_workload::Index::single(
        isel_workload::AttrId(0),
    )]);
    assert_eq!(executed_cost(&w, &sel), executed_cost(&w, &sel));
}
