//! Frontier-arbitration integration tests.
//!
//! Pins the two load-bearing contracts of the live global-budget merge:
//!
//! 1. **Incremental ≡ full** — `FrontierSet::merge` over any sequence of
//!    upserts, removals and budget changes is bit-identical to a
//!    from-scratch `merge_frontiers_weighted` over the same parts
//!    (property-based, shadowing the set with a plain map).
//! 2. **Checkpoints carry frontiers** — a router restored from a
//!    checkpoint manifest at a *different* shard count answers
//!    `whatif`/`tenant` queries byte-identically to the run that wrote
//!    the checkpoint, before consuming a single new event.

use isel_core::{merge_frontiers_weighted, Frontier, FrontierPoint, FrontierSet};
use isel_service::{Daemon, OverloadPolicy, Router, ServiceConfig};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::Workload;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::Cursor;

// ---------------------------------------------------------------------
// 1. Incremental merge ≡ full merge (property-based)
// ---------------------------------------------------------------------

/// One scripted mutation of the set and its shadow map.
#[derive(Clone, Debug)]
enum Op {
    Upsert { key: u64, weight: f64, base_cost: f64, points: Vec<(u64, u32)> },
    Remove { key: u64 },
    SetBudget { budget: u64 },
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u32..9,
        0u64..8,
        1u32..=8,
        0u32..2000,
        proptest::collection::vec((1u64..1_048_576, 0u32..2000), 0..10),
    )
        .prop_map(|(sel, key, w, base, points)| match sel {
            0..=4 => Op::Upsert {
                key,
                weight: f64::from(w) / 2.0,
                base_cost: f64::from(base),
                points,
            },
            5 => Op::Remove { key },
            6 => Op::SetBudget { budget: u64::from(base) * 1024 },
            _ => Op::Merge,
        })
}

fn frontier_of(points: &[(u64, u32)]) -> Frontier {
    Frontier::new(
        points
            .iter()
            .map(|&(memory, cost)| FrontierPoint { memory, cost: f64::from(cost) })
            .collect(),
    )
}

/// Full reference merge over the shadow parts in sorted key order.
fn reference(
    shadow: &BTreeMap<u64, (f64, f64, Frontier)>,
    budget: u64,
) -> isel_core::FrontierMerge {
    let parts: Vec<(f64, f64, &Frontier)> =
        shadow.values().map(|(w, b, f)| (*w, *b, f)).collect();
    merge_frontiers_weighted(&parts, budget)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_merge_is_bit_identical_to_full(
        budget in 1u64..2_097_152,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut set = FrontierSet::new(budget);
        let mut shadow: BTreeMap<u64, (f64, f64, Frontier)> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Upsert { key, weight, base_cost, points } => {
                    let f = frontier_of(&points);
                    let changed = set.upsert(key, weight, base_cost, f.clone());
                    let clean = shadow.get(&key)
                        .is_some_and(|(w, b, old)| {
                            w.to_bits() == weight.to_bits()
                                && b.to_bits() == base_cost.to_bits()
                                && *old == f
                        });
                    prop_assert_eq!(changed, !clean);
                    shadow.insert(key, (weight, base_cost, f));
                }
                Op::Remove { key } => {
                    prop_assert_eq!(set.remove(key), shadow.remove(&key).is_some());
                }
                Op::SetBudget { budget } => set.set_budget(budget),
                Op::Merge => {
                    let out = set.merge();
                    let want = reference(&shadow, set.budget());
                    prop_assert_eq!(&out.merge.allocations, &want.allocations);
                    prop_assert_eq!(out.merge.total_memory, want.total_memory);
                    prop_assert_eq!(
                        out.merge.total_cost.to_bits(),
                        want.total_cost.to_bits()
                    );
                    prop_assert_eq!(set.dirty_len(), 0);
                }
            }
        }
        // Final merge plus non-mutating what-ifs at probe budgets.
        let out = set.merge();
        let want = reference(&shadow, set.budget());
        prop_assert_eq!(&out.merge.allocations, &want.allocations);
        prop_assert_eq!(out.merge.total_cost.to_bits(), want.total_cost.to_bits());
        for probe in [0, 4096, budget / 2, budget] {
            let got = set.merge_at(probe);
            let want = reference(&shadow, probe);
            prop_assert_eq!(&got.allocations, &want.allocations);
            prop_assert_eq!(got.total_memory, want.total_memory);
            prop_assert_eq!(got.total_cost.to_bits(), want.total_cost.to_bits());
        }
    }
}

// ---------------------------------------------------------------------
// 2. Checkpointed frontiers answer what-ifs across shard counts
// ---------------------------------------------------------------------

fn workload() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 3,
        attrs_per_table: 8,
        queries_per_table: 10,
        rows_base: 40_000,
        max_query_width: 3,
        update_fraction: 0.1,
        seed: 177,
    })
}

fn config(shards: u32) -> ServiceConfig {
    ServiceConfig {
        epoch_events: 8,
        window_epochs: 2,
        max_templates: 64,
        drift: isel_service::DriftThresholds::always_adapt(),
        shards,
        ..ServiceConfig::default()
    }
}

fn sample_log(w: &Workload, n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = w.total_frequency();
    let mut out = String::new();
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let q = w
            .queries()
            .iter()
            .find(|q| {
                if pick < q.frequency() {
                    true
                } else {
                    pick -= q.frequency();
                    false
                }
            })
            .expect("pick < total");
        let attrs: Vec<String> = q.attrs().iter().map(|a| a.0.to_string()).collect();
        let kind = if q.is_update() { r#","kind":"Update""# } else { "" };
        out.push_str(&format!(
            "{{\"table\":{},\"attrs\":[{}]{kind}}}\n",
            q.table().0,
            attrs.join(",")
        ));
    }
    out
}

#[test]
fn restored_frontiers_answer_whatif_byte_identically_at_any_shard_count() {
    let w = workload();
    let log = sample_log(&w, 96, 23);
    let dir = std::env::temp_dir().join(format!("isel-arb-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("checkpoint.json");

    let mut writer = Router::new(w.schema().clone(), config(2)).unwrap();
    writer
        .run_reader(Cursor::new(log), OverloadPolicy::Block, Some(&manifest), &[])
        .unwrap();
    let budgets = [0, 4096, 1 << 20, writer.arbiter().budget()];
    let whatifs: Vec<String> = budgets.iter().map(|&b| writer.arbiter().whatif(b)).collect();
    let tenants: Vec<String> = (0..3).map(|t| writer.arbiter().tenant(t, 1 << 20)).collect();
    assert!(writer.arbiter().parts() > 0, "the run published frontiers");

    for shards in [1u32, 3] {
        // Restoring alone (no new events) must already answer queries:
        // the checkpoint carries the published frontiers themselves.
        let resumed = Router::resume(w.schema().clone(), config(shards), &manifest).unwrap();
        assert_eq!(resumed.arbiter().parts(), writer.arbiter().parts());
        for (b, want) in budgets.iter().zip(&whatifs) {
            assert_eq!(
                &resumed.arbiter().whatif(*b),
                want,
                "whatif at {b} B differs after resume at {shards} shards"
            );
        }
        for (t, want) in tenants.iter().enumerate() {
            assert_eq!(
                &resumed.arbiter().tenant(t as u16, 1 << 20),
                want,
                "tenant t{t} answer differs after resume at {shards} shards"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_daemon_answers_whatif_byte_identically() {
    let w = workload();
    let log = sample_log(&w, 64, 29);
    let dir = std::env::temp_dir().join(format!("isel-arb-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("daemon.json");

    let mut writer = Daemon::new(w.schema().clone(), config(0)).unwrap();
    writer
        .run_reader(Cursor::new(log), OverloadPolicy::Block, Some(&path), isel_core::Trace::disabled())
        .unwrap();
    let cp = isel_service::Checkpoint::load(&path).unwrap();
    let resumed = Daemon::resume(w.schema().clone(), config(0), &cp).unwrap();
    for b in [0u64, 4096, 1 << 20, writer.arbiter().budget()] {
        assert_eq!(resumed.arbiter().whatif(b), writer.arbiter().whatif(b));
    }
    std::fs::remove_dir_all(&dir).ok();
}
