//! Concurrency stress tests for the sharded what-if cache.
//!
//! The parallel argmax scan hammers one [`CachingWhatIf`] from many worker
//! threads at once. These tests drive that pattern hard — far more threads
//! than shards, all asking overlapping questions — and then audit the
//! [`CacheStats`] ledger: every lookup is a hit or a miss, every miss
//! inserted exactly one entry, and the wrapped oracle was consulted exactly
//! once per distinct question (no duplicate evaluations, ever).

use isel_core::{algorithm1, budget, Parallelism};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{AttrId, Index};
use std::sync::atomic::{AtomicUsize, Ordering};

fn workload() -> isel_workload::Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 1,
        attrs_per_table: 10,
        queries_per_table: 16,
        rows_base: 150_000,
        max_query_width: 4,
        update_fraction: 0.2,
        seed: 42,
    })
}

/// An oracle decorator that counts raw evaluations, to catch duplicate
/// computations that the cache's own `inserts` counter could miss.
struct CountingWhatIf<W> {
    inner: W,
    evals: AtomicUsize,
}

impl<W: WhatIfOptimizer> WhatIfOptimizer for CountingWhatIf<W> {
    fn workload(&self) -> &isel_workload::Workload {
        self.inner.workload()
    }

    fn pool(&self) -> &isel_workload::IndexPool {
        self.inner.pool()
    }

    fn unindexed_cost(&self, j: isel_workload::QueryId) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.inner.unindexed_cost(j)
    }

    fn index_cost(&self, j: isel_workload::QueryId, k: isel_workload::IndexId) -> Option<f64> {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.inner.index_cost(j, k)
    }

    fn index_memory(&self, k: isel_workload::IndexId) -> u64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.inner.index_memory(k)
    }

    fn maintenance_cost(&self, k: isel_workload::IndexId) -> f64 {
        self.inner.maintenance_cost(k)
    }

    fn stats(&self) -> isel_costmodel::WhatIfStats {
        self.inner.stats()
    }
}

/// Many threads, overlapping key sets: the ledger must balance and the
/// wrapped oracle must see each distinct question exactly once.
#[test]
fn hammered_cache_never_duplicates_and_ledger_balances() {
    let w = workload();
    let est = CachingWhatIf::new(CountingWhatIf {
        inner: AnalyticalWhatIf::new(&w),
        evals: AtomicUsize::new(0),
    });

    const THREADS: usize = 32; // 2× the shard count
    const ROUNDS: usize = 25;
    let queries: Vec<_> = w.iter().map(|(j, _)| j).collect();
    let indexes: Vec<Index> = (0..w.schema().attr_count() as u32)
        .map(|a| Index::single(AttrId(a)))
        .chain((0..w.schema().attr_count() as u32 - 1).map(|a| {
            Index::single(AttrId(a)).extended(AttrId(a + 1))
        }))
        .collect();
    // Intern once up front: the hot loop below asks by id, as the
    // selection algorithms do.
    let ids: Vec<isel_workload::IndexId> =
        indexes.iter().map(|k| est.pool().intern(k)).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let est = &est;
            let queries = &queries;
            let ids = &ids;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    // Each thread walks the key space from a different
                    // offset so racing threads collide on fresh keys.
                    for i in 0..queries.len() {
                        let j = queries[(i + t + r) % queries.len()];
                        est.unindexed_cost(j);
                        for &k in ids.iter() {
                            est.index_cost(j, k);
                        }
                    }
                }
            });
        }
    });

    // Inapplicable (query, index) pairs are answered structurally and
    // never touch the counters, so the expected ledger counts only the
    // applicable pairs plus one unindexed lookup per query.
    let applicable: usize = queries
        .iter()
        .map(|&j| {
            indexes
                .iter()
                .filter(|k| k.applicable_to(w.query(j)))
                .count()
        })
        .sum();
    let per_walk = (queries.len() + applicable) as u64;
    let stats = est.cache_stats().expect("caching oracle exposes stats");
    // Every lookup is accounted for exactly once.
    assert_eq!(stats.lookups(), (THREADS * ROUNDS) as u64 * per_walk);
    assert_eq!(stats.hits + stats.misses, stats.lookups());
    // One insert per miss — a duplicate evaluation would break this.
    assert_eq!(stats.inserts, stats.misses);
    // Distinct questions: one unindexed per query plus the applicable
    // pairs. Each was evaluated by the oracle exactly once.
    assert_eq!(stats.misses, per_walk);
    let evals = est.inner().evals.load(Ordering::Relaxed) as u64;
    assert_eq!(evals, stats.misses, "oracle evaluations must equal misses");
    // Re-walking the whole key space serially must be pure hits now.
    let before = est.cache_stats().unwrap();
    for &j in &queries {
        est.unindexed_cost(j);
        for &k in &ids {
            est.index_cost(j, k);
        }
    }
    let after = est.cache_stats().unwrap();
    assert_eq!(after.misses, before.misses, "second pass must not miss");
    assert_eq!(after.hits - before.hits, per_walk);
}

/// The real workload: Algorithm 1's parallel scan over a shared cache.
/// Stats must balance and the run must match the serial engine exactly.
#[test]
fn parallel_algorithm1_keeps_cache_accounting_consistent() {
    let w = workload();

    // Budget from a scratch estimator so both runs start with cold,
    // identical caches.
    let a = budget::relative_budget(&CachingWhatIf::new(AnalyticalWhatIf::new(&w)), 0.3);

    let serial_est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let serial = algorithm1::run(&serial_est, &algorithm1::Options::new(a));
    let serial_stats = serial_est.cache_stats().unwrap();

    let par_est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let opts = algorithm1::Options {
        parallelism: Parallelism::new(8),
        ..algorithm1::Options::new(a)
    };
    let par = algorithm1::run(&par_est, &opts);
    let par_stats = par_est.cache_stats().unwrap();

    assert_eq!(serial.steps, par.steps);
    assert_eq!(serial.final_cost, par.final_cost);

    for stats in [serial_stats, par_stats] {
        assert_eq!(stats.hits + stats.misses, stats.lookups());
        assert_eq!(stats.inserts, stats.misses);
        assert!(stats.lookups() > 0);
    }
    // The parallel engine asks the same questions, so the miss (= insert)
    // count is identical; only scheduling changes.
    assert_eq!(serial_stats.misses, par_stats.misses);
    assert_eq!(serial_stats.lookups(), par_stats.lookups());

    // Invalidation resets the memo but not the run's correctness.
    par_est.invalidate();
    let again = algorithm1::run(&par_est, &opts);
    assert_eq!(again.steps, par.steps);
}
