//! Reproducibility guarantees: every generator and every selection
//! algorithm is deterministic in its seed, so the experiment binaries
//! regenerate identical rows run after run (the property the paper's
//! "reproducible examples" hinge on).

use isel_core::{algorithm1, budget, candidates, cophy, db2, heuristics};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_solver::cophy::CophyOptions;
use isel_workload::erp::{self, ErpConfig};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{drift, tpcc};
use std::time::Duration;

#[test]
fn all_generators_are_seed_deterministic() {
    let syn = SyntheticConfig::default();
    assert_eq!(synthetic::generate(&syn), synthetic::generate(&syn));
    let erp_cfg = ErpConfig::tiny(4);
    assert_eq!(erp::generate(&erp_cfg), erp::generate(&erp_cfg));
    assert_eq!(tpcc::generate(7).0, tpcc::generate(7).0);
    let drift_cfg = drift::DriftConfig {
        base: SyntheticConfig {
            tables: 2,
            attrs_per_table: 10,
            queries_per_table: 10,
            rows_base: 1_000,
            ..SyntheticConfig::default()
        },
        epochs: 3,
        rotation_per_epoch: 2,
    };
    assert_eq!(drift::generate(&drift_cfg), drift::generate(&drift_cfg));
}

#[test]
fn selection_algorithms_are_deterministic() {
    let w = synthetic::generate(&SyntheticConfig {
        tables: 2,
        attrs_per_table: 12,
        queries_per_table: 15,
        rows_base: 100_000,
        max_query_width: 4,
        update_fraction: 0.2,
        seed: 12,
    });
    let run = |_: usize| {
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let a = budget::relative_budget(&est, 0.3);
        let pool = candidates::enumerate_imax(&w, 3).ids(est.pool());
        let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
        let h5 = heuristics::h5(&pool, &est, a);
        let cop = cophy::solve(
            &est,
            &pool,
            a,
            &CophyOptions { mip_gap: 0.0, time_limit: Duration::from_secs(60), max_nodes: 1_000_000 },
        );
        let shuffled = db2::run(&pool, &est, &db2::Db2Options { budget: a, swap_rounds: 50, seed: 3 });
        (h6.selection, h5, cop.selection, shuffled.selection)
    };
    assert_eq!(run(0), run(1));
}

#[test]
fn candidate_enumeration_is_order_stable() {
    let w = synthetic::generate(&SyntheticConfig {
        tables: 1,
        attrs_per_table: 10,
        queries_per_table: 12,
        rows_base: 10_000,
        max_query_width: 4,
        update_fraction: 0.0,
        seed: 6,
    });
    let a = candidates::enumerate_imax(&w, 4);
    let b = candidates::enumerate_imax(&w, 4);
    assert_eq!(a, b);
    let sel_a = candidates::select_candidates(&a, 10, 4, candidates::CandidateRanking::Ratio);
    let sel_b = candidates::select_candidates(&b, 10, 4, candidates::CandidateRanking::Ratio);
    assert_eq!(sel_a, sel_b);
}

#[test]
fn dimension_claims_of_design_md_hold() {
    // DESIGN.md §5 pins the experiment dimensions — keep them honest.
    let fig2 = synthetic::generate(&SyntheticConfig {
        queries_per_table: 100,
        ..SyntheticConfig::default()
    });
    assert_eq!(fig2.schema().attr_count(), 500);
    assert_eq!(fig2.query_count(), 1_000);

    let e2e = synthetic::generate(&SyntheticConfig::end_to_end(0xE2E));
    assert_eq!(e2e.schema().attr_count(), 100);
    assert_eq!(e2e.query_count(), 100);

    let erp = erp::generate(&ErpConfig::default());
    assert_eq!(erp.schema().tables().len(), 500);
    assert_eq!(erp.schema().attr_count(), 4_204);
    assert_eq!(erp.query_count(), 2_271);
}
