//! Update-aware selection across the stack: write templates make indexes
//! *cost* maintenance, so every strategy must index write-hot tables more
//! conservatively.

use isel_core::{algorithm1, budget, candidates, cophy, heuristics};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_solver::cophy::CophyOptions;
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::{AttrId, Index, Query, SchemaBuilder, TableId, Workload};
use std::time::Duration;

fn exact() -> CophyOptions {
    CophyOptions {
        mip_gap: 0.0,
        time_limit: Duration::from_secs(60),
        max_nodes: 2_000_000,
    }
}

/// One read-mostly and one write-hot table with identical shapes.
fn two_table_fixture(update_freq: u64) -> Workload {
    // Leading attributes are deliberately coarse (d = 100) so that a
    // single-attribute index leaves ~1 000 surviving rows and *extending*
    // it by the second attribute genuinely pays off in the read-only case.
    let mut b = SchemaBuilder::new();
    let read_t = b.table("read", 100_000);
    let r0 = b.attribute(read_t, "r0", 100, 4);
    let r1 = b.attribute(read_t, "r1", 1_000, 4);
    let write_t = b.table("write", 100_000);
    let w0 = b.attribute(write_t, "w0", 100, 4);
    let w1 = b.attribute(write_t, "w1", 1_000, 4);
    Workload::new(
        b.finish(),
        vec![
            Query::new(read_t, vec![r0, r1], 100),
            Query::new(write_t, vec![w0, w1], 100),
            Query::update(write_t, vec![w0], update_freq),
        ],
    )
}

#[test]
fn h6_avoids_indexing_write_hot_tables() {
    // With negligible update volume both tables get indexed; with massive
    // update volume the write table must end up index-free.
    let calm = two_table_fixture(1);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&calm));
    // w > 1: composite indexes need more memory than all singles together.
    let a = budget::relative_budget(&est, 1.5);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    let writes_indexed = run
        .selection
        .indexes()
        .iter()
        .any(|k| calm.schema().attribute(k.leading()).table == TableId(1));
    assert!(writes_indexed, "calm updates should not block indexing");

    let calm_max_width = run
        .selection
        .indexes()
        .iter()
        .filter(|k| calm.schema().attribute(k.leading()).table == TableId(1))
        .map(Index::width)
        .max()
        .unwrap_or(0);
    assert!(calm_max_width >= 2, "calm updates allow composite indexes");

    // Heavy updates do NOT remove the locate index — the update itself
    // profits enormously from finding its rows — but they must suppress
    // *extensions*: every extra key column is maintained 10⁸ times while
    // only helping the 100 select executions.
    let stormy = two_table_fixture(100_000_000);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&stormy));
    let a = budget::relative_budget(&est, 1.5);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    let reads_indexed = run
        .selection
        .indexes()
        .iter()
        .any(|k| stormy.schema().attribute(k.leading()).table == TableId(0));
    assert!(reads_indexed, "the read table is unaffected by foreign updates");
    let stormy_max_width = run
        .selection
        .indexes()
        .iter()
        .filter(|k| stormy.schema().attribute(k.leading()).table == TableId(1))
        .map(Index::width)
        .max()
        .unwrap_or(0);
    assert!(
        stormy_max_width <= 1,
        "massive update volume must suppress composite indexes (got width {stormy_max_width})"
    );
}

#[test]
fn algorithm1_cost_accounting_matches_evaluation_with_updates() {
    let w = two_table_fixture(5_000);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.8);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    let eval = run.selection.cost(&est);
    assert!(
        (eval - run.final_cost).abs() <= 1e-6 * run.initial_cost.max(1.0),
        "ledger {} vs evaluation {eval}",
        run.final_cost
    );
}

#[test]
fn cophy_penalties_match_workload_semantics() {
    let w = two_table_fixture(10_000);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 1.0);
    let pool = candidates::enumerate_imax(&w, 2).ids(est.pool());
    let run = cophy::solve(&est, &pool, a, &exact());
    assert!(run.solution.status.finished());
    // The solver's objective equals the estimator's evaluation of the
    // returned selection (maintenance included on both sides).
    let eval = run.selection.cost(&est);
    assert!(
        (eval - run.solution.objective).abs() <= 1e-6 * eval.max(1.0),
        "solver {} vs eval {eval}",
        run.solution.objective
    );
}

#[test]
fn h6_still_tracks_the_optimum_under_updates() {
    let w = synthetic::generate(&SyntheticConfig {
        tables: 1,
        attrs_per_table: 12,
        queries_per_table: 18,
        rows_base: 300_000,
        max_query_width: 4,
        update_fraction: 0.3,
        seed: 90,
    });
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.3);
    let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
    let mut pool = candidates::enumerate_imax(&w, 4).ids(est.pool());
    pool.extend(h6.selection.ids(&est));
    let opt = cophy::solve(&est, &pool, a, &exact());
    assert!(opt.solution.status.finished());
    let ratio = h6.final_cost / opt.solution.objective;
    assert!(ratio >= 1.0 - 1e-9, "H6 {ratio} below complemented optimum");
    assert!(ratio <= 1.15, "H6 {ratio} too far from optimum under updates");
}

#[test]
fn individual_benefit_is_negative_for_upkeep_only_indexes() {
    let w = two_table_fixture(1_000_000);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    // An index on w1 never helps locating (the update filters on w0 and
    // the select on (w0, w1) prefers w0) — its benefit under heavy updates
    // must be negative, and H4/H5 must skip it.
    let k = est.pool().intern(&Index::single(AttrId(3)));
    assert!(heuristics::individual_benefit(&est, k) < 0.0);
    let a = budget::relative_budget(&est, 1.0);
    let h5 = heuristics::h5(std::slice::from_ref(&k), &est, a);
    assert!(h5.is_empty());
    let h4 = heuristics::h4(&[k], &est, a, false);
    assert!(h4.is_empty());
}

#[test]
fn update_heavy_workloads_select_fewer_indexes() {
    let base_cfg = SyntheticConfig {
        tables: 2,
        attrs_per_table: 15,
        queries_per_table: 25,
        rows_base: 200_000,
        max_query_width: 5,
        update_fraction: 0.0,
        seed: 15,
    };
    let read_only = synthetic::generate(&base_cfg);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&read_only));
    let a = budget::relative_budget(&est, 0.5);
    let ro_run = algorithm1::run(&est, &algorithm1::Options::new(a));

    let write_heavy = synthetic::generate(&SyntheticConfig {
        update_fraction: 0.6,
        ..base_cfg
    });
    let est_w = CachingWhatIf::new(AnalyticalWhatIf::new(&write_heavy));
    let a_w = budget::relative_budget(&est_w, 0.5);
    let wh_run = algorithm1::run(&est_w, &algorithm1::Options::new(a_w));

    assert!(
        wh_run.selection.memory(&est_w) <= ro_run.selection.memory(&est),
        "write-heavy workloads should use no more index memory"
    );
}
