//! Determinism contract of the parallel candidate-evaluation engine.
//!
//! Algorithm 1's argmax fans candidate costing across worker threads, but
//! the winner is chosen by a serial fold over the canonical move order, so
//! a run must be bit-for-bit identical at every thread count. These tests
//! pin that contract: the *step sequence* (not just the final selection)
//! and the traced performance/memory frontier must match the serial run
//! exactly — `==` on floats, no epsilon.

use isel_core::{algorithm1, budget, Parallelism};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::{tpcc, AttrId, Query, SchemaBuilder, TableId, Workload};
use proptest::prelude::*;

/// Random single-table workload: a handful of attributes of random
/// cardinality/width and a few random queries (mirrors
/// `properties.rs::arb_workload`, plus an update share).
fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..9, 1u64..6)
        .prop_flat_map(|(n_attrs, rows_k)| {
            let rows = rows_k * 10_000;
            let attrs = prop::collection::vec(
                (1u64..=100_000, prop::sample::select(vec![1u32, 2, 4, 8])),
                n_attrs..=n_attrs,
            );
            let queries = prop::collection::vec(
                (
                    prop::collection::btree_set(0..n_attrs as u32, 1..=n_attrs.min(5)),
                    1u64..1_000,
                    0u32..5, // 0 => update template (20%)
                ),
                1..14,
            );
            (Just(rows), attrs, queries)
        })
        .prop_map(|(rows, attrs, queries)| {
            let mut b = SchemaBuilder::new();
            let t = b.table("t", rows);
            for (i, (d, a)) in attrs.iter().enumerate() {
                b.attribute(t, &format!("a{i}"), (*d).min(rows).max(1), *a);
            }
            let schema = b.finish();
            let qs = queries
                .into_iter()
                .map(|(set, freq, upd)| {
                    let attrs: Vec<AttrId> = set.into_iter().map(AttrId).collect();
                    if upd == 0 {
                        Query::update(TableId(0), attrs, freq)
                    } else {
                        Query::new(TableId(0), attrs, freq)
                    }
                })
                .collect();
            Workload::new(schema, qs)
        })
}

/// Serial and parallel runs on the same workload/budget must agree on
/// every observable: steps, frontier, selection, and costs.
fn assert_runs_identical(w: &Workload, share: f64) {
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(w));
    let a = budget::relative_budget(&est, share);
    let serial = algorithm1::run(&est, &algorithm1::Options::new(a));
    for threads in [2usize, 4, 8] {
        let opts = algorithm1::Options {
            parallelism: Parallelism::new(threads),
            ..algorithm1::Options::new(a)
        };
        let par = algorithm1::run(&est, &opts);
        assert_eq!(serial.steps, par.steps, "step log diverged at {threads} threads");
        assert_eq!(
            serial.frontier, par.frontier,
            "frontier diverged at {threads} threads"
        );
        assert_eq!(serial.selection, par.selection);
        assert_eq!(serial.initial_cost, par.initial_cost);
        assert_eq!(serial.final_cost, par.final_cost);
    }
}

/// Id keying is content-addressed: pre-seeding the pool in a scrambled
/// order (so every id differs from the cold-start run) must not change a
/// single observable, and every step's ledger cost must bit-match the
/// content-keyed boundary evaluation of the resolved index set.
fn assert_id_keying_is_content_addressed(w: &Workload, share: f64) {
    let cold = CachingWhatIf::new(AnalyticalWhatIf::new(w));
    let a = budget::relative_budget(&cold, share);
    let baseline = algorithm1::run(&cold, &algorithm1::Options::new(a));

    // Shift every id the run will touch: intern all attributes (and their
    // reversed pairs) in reverse order before the engine sees the pool.
    let shifted = CachingWhatIf::new(AnalyticalWhatIf::new(w));
    let n = w.schema().attr_count() as u32;
    for i in (0..n).rev() {
        let root = shifted.pool().intern_single(AttrId(i));
        if i > 0 {
            shifted.pool().intern_child(root, AttrId(i - 1));
        }
    }
    let rerun = algorithm1::run(&shifted, &algorithm1::Options::new(a));
    assert_eq!(baseline.steps, rerun.steps, "id numbering leaked into the step log");
    assert_eq!(baseline.frontier, rerun.frontier, "id numbering leaked into the frontier");
    assert_eq!(baseline.selection, rerun.selection);
    assert_eq!(baseline.final_cost, rerun.final_cost);

    // Entering through the content-keyed boundary (`&[Index]`, interned on
    // the way in) and asking by id directly are the same computation —
    // bit-identical, on either estimator's pool.
    let resolved = baseline.selection.indexes().to_vec();
    let by_content = cold.workload_cost_of(&resolved);
    let by_id = cold.workload_cost(&baseline.selection.ids(&cold));
    assert_eq!(by_content, by_id);
    assert_eq!(by_content, baseline.selection.cost(&cold));
    assert_eq!(by_content, shifted.workload_cost_of(&resolved));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// ≥100 random workloads: the parallel engine replays the serial step
    /// sequence and frontier exactly at 2, 4 and 8 threads.
    #[test]
    fn parallel_runs_replay_the_serial_schedule(
        w in arb_workload(),
        share in 0.05f64..0.8,
    ) {
        assert_runs_identical(&w, share);
    }

    /// Same corpus: frontiers and step logs are invariant under id
    /// renumbering, and the id-keyed ledger equals the content-keyed
    /// boundary evaluation — `==` on floats, no epsilon.
    #[test]
    fn id_keyed_runs_match_content_keyed_costing(
        w in arb_workload(),
        share in 0.05f64..0.8,
    ) {
        assert_id_keying_is_content_addressed(&w, share);
    }
}

/// Fixed-seed TPC-C regression: the frontier traced on the deterministic
/// TPC-C workload is reproducible run-to-run and thread-count-invariant,
/// and its shape is sane (monotone cost decrease over increasing memory).
#[test]
fn tpcc_frontier_is_reproducible_across_thread_counts() {
    let (w, _) = tpcc::generate(10);
    assert_runs_identical(&w, 0.4);

    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.4);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    assert!(!run.steps.is_empty(), "TPC-C at 40% budget must build indexes");
    let points = run.frontier.points();
    assert!(!points.is_empty());
    for pair in points.windows(2) {
        assert!(pair[0].memory < pair[1].memory);
        assert!(pair[0].cost > pair[1].cost);
    }
    // Same config twice — identical object, not merely similar.
    let again = algorithm1::run(&est, &algorithm1::Options::new(a));
    assert_eq!(run.steps, again.steps);
    assert_eq!(run.frontier, again.frontier);
}

/// Zero out wall-clock fields so event streams from different runs can be
/// compared structurally: timings vary run-to-run, everything else is
/// part of the determinism contract.
fn scrub_timings(events: Vec<isel_core::TraceEvent>) -> Vec<isel_core::TraceEvent> {
    use isel_core::TraceEvent;
    events
        .into_iter()
        .map(|e| match e {
            TraceEvent::CandidateScan { step, candidates, queries_recosted, issued, cached, .. } => {
                TraceEvent::CandidateScan {
                    step,
                    candidates,
                    queries_recosted,
                    issued,
                    cached,
                    micros: 0,
                }
            }
            TraceEvent::SolverPhase { phase, detail, .. } => {
                TraceEvent::SolverPhase { phase, detail, micros: 0 }
            }
            TraceEvent::RunEnd {
                strategy, steps, issued, cached, initial_cost, final_cost, shard, ..
            } => TraceEvent::RunEnd {
                strategy,
                steps,
                issued,
                cached,
                initial_cost,
                final_cost,
                micros: 0,
                shard,
            },
            other => other,
        })
        .collect()
}

/// Tracing only observes: a traced run is bit-identical to the untraced
/// one at every thread count, the event stream itself (timings aside) is
/// thread-count-invariant, and the stream satisfies the accounting and
/// what-if call-bound invariants.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    use isel_core::{RunReport, Trace, VecSink};
    let (w, _) = tpcc::generate(5);
    let baseline = {
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let a = budget::relative_budget(&est, 0.3);
        algorithm1::run(&est, &algorithm1::Options::new(a))
    };
    let mut streams = Vec::new();
    for threads in [1usize, 4] {
        // Fresh estimator per run so cache state — and therefore the
        // issued/cached counters in the events — is identical.
        let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
        let a = budget::relative_budget(&est, 0.3);
        let sink = VecSink::new();
        let opts = algorithm1::Options {
            parallelism: Parallelism::new(threads),
            ..algorithm1::Options::new(a)
        };
        let traced = algorithm1::run_traced(&est, &opts, Trace::to(&sink));
        assert_eq!(baseline.steps, traced.steps, "tracing changed the step log");
        assert_eq!(baseline.frontier, traced.frontier);
        assert_eq!(baseline.selection, traced.selection);
        assert_eq!(baseline.initial_cost, traced.initial_cost);
        assert_eq!(baseline.final_cost, traced.final_cost);
        let events = sink.take();
        let report = RunReport::from_events(&events);
        report.check_accounting().expect("scan sums equal run totals");
        report.check_call_bound().expect("what-if call bound holds");
        streams.push(scrub_timings(events));
    }
    assert_eq!(
        streams[0], streams[1],
        "event stream diverged across thread counts"
    );
}

/// The [`Advisor`] facade honours the same contract: attaching a trace
/// sink changes no observable of the recommendation, for every traced
/// strategy, at 1 and 4 threads.
#[test]
fn traced_advisor_recommendations_match_untraced() {
    use isel_core::{Advisor, Strategy, Trace, VecSink};
    let (w, _) = tpcc::generate(5);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    for strategy in [
        Strategy::H4 { skyline: true },
        Strategy::H5,
        Strategy::H6,
        Strategy::Db2 { swap_rounds: 50 },
    ] {
        for threads in [1usize, 4] {
            let par = Parallelism::new(threads);
            let plain = Advisor::new(&est)
                .with_parallelism(par)
                .recommend_relative(strategy.clone(), 0.3);
            let sink = VecSink::new();
            let traced = Advisor::new(&est)
                .with_parallelism(par)
                .with_trace(Trace::to(&sink))
                .recommend_relative(strategy.clone(), 0.3);
            assert_eq!(plain.selection, traced.selection, "{strategy:?}");
            assert_eq!(plain.cost, traced.cost);
            assert_eq!(plain.memory, traced.memory);
            assert!(!sink.take().is_empty(), "{strategy:?} emitted no events");
        }
    }
}

/// The advisor surface honours the same contract for the candidate-set
/// strategies whose scans were parallelised (H4/H5/CoPhy build stage).
#[test]
fn tpcc_heuristic_scans_are_thread_count_invariant() {
    use isel_core::{Advisor, Strategy};
    let (w, _) = tpcc::generate(5);
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    for strategy in [
        Strategy::H4 { skyline: true },
        Strategy::H5,
        Strategy::H6,
    ] {
        let serial = Advisor::new(&est).recommend_relative(strategy.clone(), 0.3);
        let par = Advisor::new(&est)
            .with_parallelism(Parallelism::new(4))
            .recommend_relative(strategy, 0.3);
        assert_eq!(serial.selection, par.selection, "{:?}", serial.strategy);
        assert_eq!(serial.cost, par.cost);
        assert_eq!(serial.memory, par.memory);
    }
}
