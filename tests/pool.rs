//! Property-based tests for the prefix-linked [`IndexPool`]: interning is
//! a bijection between index *content* and [`IndexId`], parent links
//! always point at the longest proper prefix, and the morphing edge map
//! agrees with full-list interning.

use isel_workload::{AttrId, Index, IndexPool, SchemaBuilder};
use proptest::prelude::*;

const ATTRS: u32 = 12;

fn schema() -> isel_workload::Schema {
    let mut b = SchemaBuilder::new();
    let t = b.table("t", 100_000);
    for i in 0..ATTRS {
        b.attribute(t, &format!("a{i}"), 100, 4);
    }
    b.finish()
}

/// A random valid index: 1..=5 distinct attributes in random order
/// (Fisher–Yates keyed by an extra seed so shrinking stays local).
fn arb_attrs() -> impl Strategy<Value = Vec<AttrId>> {
    (prop::collection::btree_set(0..ATTRS, 1..=5), 0u64..u64::MAX).prop_map(|(set, seed)| {
        let mut attrs: Vec<AttrId> = set.into_iter().map(AttrId).collect();
        let mut state = seed | 1;
        for i in (1..attrs.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            attrs.swap(i, (state >> 33) as usize % (i + 1));
        }
        attrs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Intern → resolve is the identity on index content, and interning
    /// the same content again (in any interleaving with other indexes)
    /// returns the same id: id equality ≡ content equality.
    #[test]
    fn intern_resolve_round_trips(
        indexes in prop::collection::vec(arb_attrs(), 1..24),
    ) {
        let s = schema();
        let pool = IndexPool::new(&s);
        let ids: Vec<_> = indexes.iter().map(|a| pool.intern_attrs(a)).collect();
        for (attrs, &id) in indexes.iter().zip(&ids) {
            prop_assert_eq!(pool.attrs(id), &attrs[..]);
            prop_assert_eq!(pool.resolve(id), Index::new(attrs.clone()));
            prop_assert_eq!(pool.width(id), attrs.len());
            prop_assert_eq!(pool.leading(id), attrs[0]);
            prop_assert_eq!(pool.last(id), *attrs.last().unwrap());
            // Idempotent re-intern, after everything else went in.
            prop_assert_eq!(pool.intern_attrs(attrs), id);
        }
        // Distinct content ⇒ distinct ids and vice versa.
        for (i, a) in indexes.iter().enumerate() {
            for (j, b) in indexes.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
    }

    /// Every interned index carries the full prefix chain: walking parent
    /// links strips exactly one trailing attribute per step down to a
    /// width-1 root, and every link in the chain is itself interned.
    #[test]
    fn parent_links_walk_the_prefix_chain(attrs in arb_attrs()) {
        let s = schema();
        let pool = IndexPool::new(&s);
        let id = pool.intern_attrs(&attrs);
        let mut at = id;
        for width in (1..=attrs.len()).rev() {
            prop_assert_eq!(pool.attrs(at), &attrs[..width]);
            match pool.parent(at) {
                Some(p) => {
                    prop_assert!(width > 1, "width-1 entries have no parent");
                    // The parent is the interned id of the prefix.
                    prop_assert_eq!(pool.intern_attrs(&attrs[..width - 1]), p);
                    at = p;
                }
                None => prop_assert_eq!(width, 1),
            }
        }
    }

    /// `child`/`intern_child` (Algorithm 1's morphing step) agree with
    /// interning the extended attribute list, and repeated lookups are
    /// idempotent.
    #[test]
    fn child_lookup_matches_full_interning(attrs in arb_attrs()) {
        prop_assume!(attrs.len() >= 2);
        let s = schema();
        let pool = IndexPool::new(&s);
        let (prefix, ext) = attrs.split_at(attrs.len() - 1);
        let parent = pool.intern_attrs(prefix);
        // Not yet interned: the edge map must not invent children.
        prop_assert_eq!(pool.child(parent, ext[0]), None);
        let child = pool.intern_child(parent, ext[0]);
        prop_assert_eq!(pool.child(parent, ext[0]), Some(child));
        prop_assert_eq!(pool.intern_child(parent, ext[0]), child);
        prop_assert_eq!(pool.intern_attrs(&attrs), child);
        prop_assert_eq!(pool.parent(child), Some(parent));
    }
}
