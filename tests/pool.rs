//! Property-based tests for the prefix-linked [`IndexPool`]: interning is
//! a bijection between index *content* and [`IndexId`], parent links
//! always point at the longest proper prefix, and the morphing edge map
//! agrees with full-list interning.

use isel_workload::{AttrId, Index, IndexPool, SchemaBuilder};
use proptest::prelude::*;

const ATTRS: u32 = 12;

fn schema() -> isel_workload::Schema {
    let mut b = SchemaBuilder::new();
    let t = b.table("t", 100_000);
    for i in 0..ATTRS {
        b.attribute(t, &format!("a{i}"), 100, 4);
    }
    b.finish()
}

/// A random valid index: 1..=5 distinct attributes in random order
/// (Fisher–Yates keyed by an extra seed so shrinking stays local).
fn arb_attrs() -> impl Strategy<Value = Vec<AttrId>> {
    (prop::collection::btree_set(0..ATTRS, 1..=5), 0u64..u64::MAX).prop_map(|(set, seed)| {
        let mut attrs: Vec<AttrId> = set.into_iter().map(AttrId).collect();
        let mut state = seed | 1;
        for i in (1..attrs.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            attrs.swap(i, (state >> 33) as usize % (i + 1));
        }
        attrs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Intern → resolve is the identity on index content, and interning
    /// the same content again (in any interleaving with other indexes)
    /// returns the same id: id equality ≡ content equality.
    #[test]
    fn intern_resolve_round_trips(
        indexes in prop::collection::vec(arb_attrs(), 1..24),
    ) {
        let s = schema();
        let pool = IndexPool::new(&s);
        let ids: Vec<_> = indexes.iter().map(|a| pool.intern_attrs(a)).collect();
        for (attrs, &id) in indexes.iter().zip(&ids) {
            prop_assert_eq!(pool.attrs(id), &attrs[..]);
            prop_assert_eq!(pool.resolve(id), Index::new(attrs.clone()));
            prop_assert_eq!(pool.width(id), attrs.len());
            prop_assert_eq!(pool.leading(id), attrs[0]);
            prop_assert_eq!(pool.last(id), *attrs.last().unwrap());
            // Idempotent re-intern, after everything else went in.
            prop_assert_eq!(pool.intern_attrs(attrs), id);
        }
        // Distinct content ⇒ distinct ids and vice versa.
        for (i, a) in indexes.iter().enumerate() {
            for (j, b) in indexes.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
    }

    /// Every interned index carries the full prefix chain: walking parent
    /// links strips exactly one trailing attribute per step down to a
    /// width-1 root, and every link in the chain is itself interned.
    #[test]
    fn parent_links_walk_the_prefix_chain(attrs in arb_attrs()) {
        let s = schema();
        let pool = IndexPool::new(&s);
        let id = pool.intern_attrs(&attrs);
        let mut at = id;
        for width in (1..=attrs.len()).rev() {
            prop_assert_eq!(pool.attrs(at), &attrs[..width]);
            match pool.parent(at) {
                Some(p) => {
                    prop_assert!(width > 1, "width-1 entries have no parent");
                    // The parent is the interned id of the prefix.
                    prop_assert_eq!(pool.intern_attrs(&attrs[..width - 1]), p);
                    at = p;
                }
                None => prop_assert_eq!(width, 1),
            }
        }
    }

    /// `child`/`intern_child` (Algorithm 1's morphing step) agree with
    /// interning the extended attribute list, and repeated lookups are
    /// idempotent.
    #[test]
    fn child_lookup_matches_full_interning(attrs in arb_attrs()) {
        prop_assume!(attrs.len() >= 2);
        let s = schema();
        let pool = IndexPool::new(&s);
        let (prefix, ext) = attrs.split_at(attrs.len() - 1);
        let parent = pool.intern_attrs(prefix);
        // Not yet interned: the edge map must not invent children.
        prop_assert_eq!(pool.child(parent, ext[0]), None);
        let child = pool.intern_child(parent, ext[0]);
        prop_assert_eq!(pool.child(parent, ext[0]), Some(child));
        prop_assert_eq!(pool.intern_child(parent, ext[0]), child);
        prop_assert_eq!(pool.intern_attrs(&attrs), child);
        prop_assert_eq!(pool.parent(child), Some(parent));
    }
}

// ------------------------------------------------------------- compaction

use isel_workload::IndexId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `compact(live)` keeps exactly the prefix closure of the live set:
    /// every live id round-trips through the remap to identical content,
    /// every dropped id maps to `None`, and the surviving pool is the
    /// closure — no more, no less.
    #[test]
    fn compaction_round_trips_the_live_closure(
        indexes in prop::collection::vec(arb_attrs(), 1..24),
        live_picks in prop::collection::vec(0usize..1000, 0..12),
    ) {
        let s = schema();
        let mut pool = IndexPool::new(&s);
        let ids: Vec<_> = indexes.iter().map(|a| pool.intern_attrs(a)).collect();
        let live: Vec<IndexId> = live_picks.iter().map(|&p| ids[p % ids.len()]).collect();

        // Independent expected closure: every prefix of every live index.
        let mut closure = std::collections::BTreeSet::new();
        for &id in &live {
            let attrs = pool.attrs(id).to_vec();
            for width in 1..=attrs.len() {
                closure.insert(attrs[..width].to_vec());
            }
        }
        let old_contents: Vec<Vec<_>> = ids.iter().map(|&i| pool.attrs(i).to_vec()).collect();
        // Interning an index interns its whole prefix chain, so the pool
        // (and the remap domain) covers more ids than were asked for.
        let old_len = pool.len();

        let remap = pool.compact(&live);
        prop_assert_eq!(remap.len(), old_len);
        prop_assert_eq!(remap.retained(), closure.len());
        prop_assert_eq!(pool.len(), closure.len());
        for (old, content) in ids.iter().zip(&old_contents) {
            match remap.get(*old) {
                Some(new) => {
                    prop_assert!(closure.contains(content), "kept ids are in the closure");
                    prop_assert_eq!(pool.attrs(new), &content[..]);
                }
                None => prop_assert!(!closure.contains(content)),
            }
        }
    }

    /// Parent links survive compaction: the compacted entry of a live
    /// index still walks its full prefix chain, and each link agrees
    /// with the remap of the pre-compaction chain.
    #[test]
    fn compaction_preserves_parent_links(
        indexes in prop::collection::vec(arb_attrs(), 1..16),
        pick in 0usize..1000,
    ) {
        let s = schema();
        let mut pool = IndexPool::new(&s);
        let ids: Vec<_> = indexes.iter().map(|a| pool.intern_attrs(a)).collect();
        let live = ids[pick % ids.len()];

        // Pre-compaction chain, top down.
        let mut old_chain = vec![live];
        while let Some(p) = pool.parent(*old_chain.last().unwrap()) {
            old_chain.push(p);
        }

        let remap = pool.compact(&[live]);
        let mut at = remap.get(live).expect("live id survives");
        for &old in &old_chain {
            // The chain maps link-for-link through the remap.
            prop_assert_eq!(Some(at), remap.get(old));
            prop_assert_eq!(pool.attrs(at).len(), pool.width(at));
            match pool.parent(at) {
                Some(p) => at = p,
                None => prop_assert_eq!(pool.width(at), 1),
            }
        }
    }

    /// Compaction is canonical: pools that hold the same live content —
    /// however different their intern histories — compact to identical
    /// id assignments. (This is what makes post-compaction checkpoints
    /// byte-stable across daemon lifetimes.)
    #[test]
    fn compaction_is_history_independent(
        indexes in prop::collection::vec(arb_attrs(), 2..16),
        churn in prop::collection::vec(arb_attrs(), 0..16),
        reorder_seed in 0u64..1000,
    ) {
        let s = schema();

        // Pool A: interleave churn entries (which will die), then live.
        let mut a = IndexPool::new(&s);
        for attrs in &churn {
            a.intern_attrs(attrs);
        }
        let live_a: Vec<IndexId> = indexes.iter().map(|x| a.intern_attrs(x)).collect();

        // Pool B: live entries only, interned in a shuffled order.
        let mut order: Vec<usize> = (0..indexes.len()).collect();
        let mut state = reorder_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut b = IndexPool::new(&s);
        let live_b: Vec<IndexId> = order.iter().map(|&i| b.intern_attrs(&indexes[i])).collect();

        a.compact(&live_a);
        b.compact(&live_b);
        prop_assert_eq!(a.len(), b.len());
        for raw in 0..a.len() as u32 {
            // Each slot holds the same content in both pools.
            prop_assert_eq!(a.attrs(IndexId(raw)), b.attrs(IndexId(raw)));
        }
    }
}
