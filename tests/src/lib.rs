//! Integration-test host package; see the test files next to this crate.
