//! Cross-crate pipeline tests: workload generation → cost model →
//! selection algorithms, on the paper's synthetic setting.

use isel_core::{algorithm1, budget, candidates, heuristics};
use isel_costmodel::{AnalyticalWhatIf, CachingWhatIf, WhatIfOptimizer};
use isel_workload::synthetic::{self, SyntheticConfig};
use isel_workload::Workload;

fn small() -> Workload {
    synthetic::generate(&SyntheticConfig {
        tables: 3,
        attrs_per_table: 20,
        queries_per_table: 30,
        rows_base: 200_000,
        max_query_width: 6,
        update_fraction: 0.0,
        seed: 99,
    })
}

#[test]
fn h6_beats_all_rule_based_heuristics_on_synthetic_workloads() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.25);
    let pool = candidates::enumerate_imax(&w, 4).ids(est.pool());

    let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
    let h6_cost = h6.final_cost;
    for (name, sel) in [
        ("h1", heuristics::h1(&pool, &est, a)),
        ("h2", heuristics::h2(&pool, &est, a)),
        ("h3", heuristics::h3(&pool, &est, a)),
    ] {
        let cost = sel.cost(&est);
        assert!(
            h6_cost <= cost * 1.001,
            "{name}: H6 {h6_cost} should beat rule-based {cost}"
        );
    }
}

#[test]
fn h6_is_competitive_with_performance_based_heuristics() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.25);
    let pool = candidates::enumerate_imax(&w, 4).ids(est.pool());
    let h6 = algorithm1::run(&est, &algorithm1::Options::new(a));
    let h5 = heuristics::h5(&pool, &est, a).cost(&est);
    // H5 with the full candidate set is a strong baseline; H6 must at
    // least match it within a small tolerance (it usually wins).
    assert!(
        h6.final_cost <= h5 * 1.05,
        "H6 {} vs H5 {h5}",
        h6.final_cost
    );
}

#[test]
fn all_strategies_respect_every_budget() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let pool = candidates::enumerate_imax(&w, 4).ids(est.pool());
    for share in [0.05, 0.15, 0.35] {
        let a = budget::relative_budget(&est, share);
        let sels = [
            heuristics::h1(&pool, &est, a),
            heuristics::h2(&pool, &est, a),
            heuristics::h3(&pool, &est, a),
            heuristics::h4(&pool, &est, a, false),
            heuristics::h4(&pool, &est, a, true),
            heuristics::h5(&pool, &est, a),
            algorithm1::run(&est, &algorithm1::Options::new(a)).selection,
        ];
        for sel in sels {
            assert!(sel.memory(&est) <= a, "selection exceeds budget at w={share}");
        }
    }
}

#[test]
fn selections_never_increase_workload_cost() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let base = est.workload_cost(&[]);
    let a = budget::relative_budget(&est, 0.3);
    let pool = candidates::enumerate_imax(&w, 4).ids(est.pool());
    for sel in [
        heuristics::h1(&pool, &est, a),
        heuristics::h4(&pool, &est, a, true),
        algorithm1::run(&est, &algorithm1::Options::new(a)).selection,
    ] {
        assert!(sel.cost(&est) <= base + 1e-9);
    }
}

#[test]
fn frontier_is_monotone_in_budget() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.5);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    let points = run.frontier.points();
    for pair in points.windows(2) {
        assert!(pair[0].memory < pair[1].memory);
        assert!(pair[0].cost > pair[1].cost);
    }
}

#[test]
fn selection_at_replays_the_step_log_consistently() {
    let w = small();
    let est = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&est, 0.4);
    let run = algorithm1::run(&est, &algorithm1::Options::new(a));
    // Replaying at the final memory reproduces the final selection.
    let full = algorithm1::selection_at(&run.steps, a);
    assert_eq!(full, run.selection);
    // Replaying at a reduced budget yields a subset-size selection that
    // fits and whose cost matches the frontier.
    let half = a / 2;
    let partial = algorithm1::selection_at(&run.steps, half);
    assert!(partial.memory(&est) <= half);
    if let Some(frontier_cost) = run.frontier.cost_at(half) {
        let eval = partial.cost(&est);
        assert!(
            (eval - frontier_cost).abs() <= 1e-6 * eval.abs().max(1.0),
            "replaccording frontier {frontier_cost} vs eval {eval}"
        );
    }
}

#[test]
fn multi_index_oracle_tracks_single_index_semantics() {
    // Appendix B's multi-index procedure greedily picks the index with the
    // smallest result set first, which need not coincide with the
    // cheapest-total single index — so the multi-index cost can sit a hair
    // above the Example-1 min formula on individual queries. It must stay
    // within a fraction of a percent overall and never exceed the
    // unindexed baseline.
    let w = small();
    let single = CachingWhatIf::new(AnalyticalWhatIf::new(&w));
    let multi = isel_costmodel::multi::MultiIndexAnalyticalWhatIf::new(&w);
    let a = budget::relative_budget(&single, 0.3);
    let sel = algorithm1::run(&single, &algorithm1::Options::new(a)).selection;
    let cost_single = sel.cost(&single);
    let cost_multi = sel.cost(&multi);
    let base = single.workload_cost(&[]);
    assert!(cost_multi <= base + 1e-9);
    assert!(
        cost_multi <= cost_single * 1.01,
        "multi {cost_multi} vs single {cost_single}"
    );
}

#[test]
fn algorithm1_runs_under_multi_index_semantics_too() {
    // Remark 2: the construction works unchanged when queries may use
    // several indexes.
    let w = small();
    let multi = CachingWhatIf::new(isel_costmodel::multi::MultiIndexAnalyticalWhatIf::new(&w));
    let a = budget::relative_budget(&multi, 0.2);
    let run = algorithm1::run(&multi, &algorithm1::Options::new(a));
    assert!(run.final_cost <= run.initial_cost);
    assert!(run.selection.memory(&multi) <= a);
}
