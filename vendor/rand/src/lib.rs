//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the exact subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and the `Rng` extension
//! methods `gen_range` (over `Range`/`RangeInclusive` of the common
//! integer and float types), `gen_bool`, `gen`, `fill`, plus
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! across platforms and runs, which the workspace's reproducibility tests
//! rely on. It is **not** cryptographically secure (neither is the use).

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded uniform (Lemire); bias is < 2^-64 per draw,
/// irrelevant for simulation workloads.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::draw(self) < p
    }

    /// One uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! Common re-exports, mirroring `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
