//! Sequence-related random operations (`rand::seq` subset).

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample(rng)])
        }
    }
}
