//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim.
//!
//! crates.io (and therefore syn/quote) is unavailable in this build
//! environment, so the item is parsed directly from the
//! `proc_macro::TokenStream` and the impls are emitted as source text.
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (`#[serde(default)]` honored; `Option<_>`
//!   fields default to `None` when the key is absent, like real serde),
//! * tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! * enums with unit, tuple, and struct variants using serde's
//!   *external* tagging (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error naming this shim.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
    /// Type is spelled `Option<...>`: missing keys become `None`.
    optionish: bool,
}

enum Fields {
    Named(Vec<Field>),
    /// Tuple struct/variant with N fields.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive shim generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skip `#[...]` attributes; report whether `#[serde(default)]` was
    /// among them.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while self.eat_punct('#') {
            if let Some(TokenTree::Group(g)) = self.next() {
                let text = g.stream().to_string().replace(' ', "");
                if text.starts_with("serde(") && text.contains("default") {
                    has_default = true;
                }
            }
        }
        has_default
    }

    /// Skip `pub` / `pub(...)`.
    fn skip_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde shim: expected struct/enum, got {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde shim: expected item name, got {other:?}")),
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` not supported by the vendored derive"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde shim: bad struct body {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde shim: bad enum body {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("serde shim: cannot derive for `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let default = c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("serde shim: expected field name, got {other:?}")),
        };
        if !c.eat_punct(':') {
            return Err(format!("serde shim: expected `:` after field `{name}`"));
        }
        // Consume the type, tracking angle-bracket depth so commas inside
        // generics don't terminate the field.
        let mut optionish = false;
        let mut first = true;
        let mut depth = 0i32;
        while let Some(tok) = c.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    c.pos += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Ident(i) if first => {
                    if i.to_string() == "Option" {
                        optionish = true;
                    }
                    first = false;
                }
                _ => {}
            }
            c.pos += 1;
        }
        fields.push(Field { name, default, optionish });
    }
    Ok(Fields::Named(fields))
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut any = false;
    let mut count = 0usize;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => any = true,
        }
    }
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("serde shim: expected variant name, got {other:?}")),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

/// `Object(vec![...])` expression serializing named fields reachable via
/// `prefix` (`&self.` for structs, `` for bound variant fields).
fn ser_named(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value({}{}))",
                f.name, prefix, f.name
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => ser_named(fs, "&self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: Vec<String> =
                                fs.iter().map(|f| f.name.clone()).collect();
                            let inner = ser_named(fs, "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Field-init expression deserializing named field `f` out of `src`.
fn de_field(f: &Field, src: &str) -> String {
    let fname = &f.name;
    let fallback = if f.default || f.optionish {
        "::std::default::Default::default()".to_owned()
    } else {
        format!("return ::std::result::Result::Err(::serde::DeError::missing({fname:?}))")
    };
    format!(
        "{fname}: match {src}.get_field({fname:?}) {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {fallback},\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs.iter().map(|f| de_field(f, "__v")).collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(",\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        gets.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name)
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __items = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                gets.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> =
                                fs.iter().map(|f| de_field(f, "__inner")).collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(",\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::expected(\"externally tagged enum\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
