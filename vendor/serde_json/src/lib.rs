//! Offline shim for the `serde_json` crate.
//!
//! Works over the vendored serde shim's [`Value`] tree: a recursive
//! descent JSON parser, a compact writer (Rust's shortest round-trip
//! float formatting), and the `json!` object macro. Supports the API
//! subset the workspace uses: `to_string`, `to_string_pretty`,
//! `to_writer`, `to_value`, `from_str`, `from_reader`, `from_value`,
//! `Value`, `Error`.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self(e.to_string())
    }
}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a typed value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Build a [`Value`] object literally: `json!({"k": expr, ...})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).expect("json! item") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val).expect("json! value")) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

// ----------------------------------------------------------------- writer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's Display for floats is shortest-round-trip; add a
                // ".0" so integral floats stay floats on re-parse.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(e))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::F64(1.25)),
            ("c".into(), Value::Array(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("x\"\\\n".into())),
            ("n".into(), Value::I64(-7)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str(r#"{"x": [1, 2.5, {"y": null}], "z": "uA"}"#).unwrap();
        assert_eq!(v.get("z").and_then(Value::as_str), Some("uA"));
        assert_eq!(v.get("x").and_then(Value::as_array).map(Vec::len), Some(3));
    }

    #[test]
    fn json_macro_builds_objects() {
        let row = json!({"k": 1u64, "s": format!("v{}", 2)});
        assert_eq!(row.get("k").and_then(Value::as_u64), Some(1));
        assert_eq!(row.get("s").and_then(Value::as_str), Some("v2"));
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{bad json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
