//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, `Just`,
//! `collection::{vec, btree_set}`, `sample::select`, `ProptestConfig`,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Generation is deterministic (fixed base seed, one stream per
//! case) and there is no shrinking: a failing case reports its case
//! number and message.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

use rand::prelude::*;
use rand::SampleRange;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// The case does not satisfy a precondition; try another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "test case failed: {m}"),
            Self::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy, cheap to clone.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($range:ident),*) => {$(
        impl<T> Strategy for $range<T>
        where
            $range<T>: SampleRange<T> + Clone,
        {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                SampleRange::sample(self.clone(), rng)
            }
        }
    )*};
}
range_strategy!(Range, RangeInclusive);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..=self.size.max).sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = (self.size.min..=self.size.max).sample(rng);
            let mut set = BTreeSet::new();
            // Small element domains may not admit `target` distinct values;
            // give up after a generous number of draws rather than spin.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `BTreeSet` of `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(0..self.0.len()).sample(rng)].clone()
        }
    }

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65_536 }
    }
}

pub mod test_runner {
    use super::*;

    /// Fixed base seed: every run of the suite sees the same cases.
    const BASE_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Run `test` on `config.cases` generated inputs. Rejected cases
        /// are regenerated (up to `max_global_rejects` in total).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejects = 0u32;
            let mut stream = 0u64;
            while passed < self.config.cases {
                let mut rng = TestRng::seed_from_u64(BASE_SEED ^ stream);
                stream += 1;
                let value = strategy.generate(&mut rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            return Err(format!(
                                "too many rejected cases ({rejects}) after {passed} passed"
                            ));
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(format!(
                            "property failed on case #{passed} (stream {}): {msg}",
                            stream - 1
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let result = runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(msg) = result {
                panic!("{}", msg);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..100, 3..=6);
        let mut r1 = crate::TestRng::seed_from_u64(7);
        let mut r2 = crate::TestRng::seed_from_u64(7);
        use rand::SeedableRng;
        let _ = (&mut r1, &mut r2);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y >= 0.25 && y < 0.75);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..50, 2..=5),
            s in prop::collection::btree_set(0u32..1000, 1..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(!s.is_empty() && s.len() < 4);
        }

        #[test]
        fn flat_map_and_assume_work(pair in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..10, n..=n)))) {
            let (n, v) = pair;
            prop_assume!(n > 0);
            prop_assert_eq!(v.len(), n);
        }
    }
}
