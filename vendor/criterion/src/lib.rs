//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset the
//! workspace benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Results are printed as `name  time: [median per iteration]` lines. When
//! the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), each benchmark body runs once so the
//! suite stays fast.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; the shim times routine calls
/// individually regardless, so this only documents intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed section of one benchmark.
pub struct Bencher {
    /// Total time per measured sample the harness aims for.
    target: Duration,
    /// Quick mode (`--test`): run the body exactly once.
    quick: bool,
    /// Median per-iteration time of the last `iter*` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly, recording the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            self.result = Some(Duration::ZERO);
            return;
        }
        // Calibrate: how many iterations fit in ~1/8 of the target?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = ((self.target.as_nanos() / 8 / once.as_nanos().max(1)) as u64).clamp(1, 1 << 20);
        let mut samples = Vec::with_capacity(8);
        let deadline = Instant::now() + self.target;
        loop {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed() / per_sample as u32);
            if samples.len() >= 8 || Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            self.result = Some(Duration::ZERO);
            return;
        }
        let mut samples = Vec::with_capacity(8);
        let deadline = Instant::now() + self.target;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
            if samples.len() >= 8 || Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark manager; created by `criterion_group!`.
pub struct Criterion {
    target: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test");
        Self { target: Duration::from_millis(400), quick }
    }
}

impl Criterion {
    /// Override the measurement time budget for subsequent benchmarks.
    pub fn measurement_time(&mut self, target: Duration) -> &mut Self {
        self.target = target;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.target, self.quick, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, target: Duration, quick: bool, mut f: F) {
    let mut b = Bencher { target, quick, result: None };
    f(&mut b);
    match b.result {
        Some(d) if !quick => println!("{name:<50} time: [{}]", format_duration(d)),
        _ => println!("{name:<50} ok (quick)"),
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, target: Duration) -> &mut Self {
        self.parent.target = target;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.target, self.parent.quick, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.target, self.parent.quick, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iter_samples() {
        let mut b = Bencher { target: Duration::from_millis(5), quick: false, result: None };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.result.is_some());
        assert!(count > 0);
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher { target: Duration::from_secs(10), quick: true, result: None };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        let mut batched = 0u64;
        b.iter_batched(|| 3u64, |x| batched += x, BatchSize::SmallInput);
        assert_eq!(batched, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
