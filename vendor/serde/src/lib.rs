//! Offline shim for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! replaces serde's visitor architecture with a small JSON-shaped value
//! tree: [`Serialize`] renders any value to a [`Value`], [`Deserialize`]
//! rebuilds it. The companion `serde_derive` shim generates both impls
//! for structs and enums with serde's *external* enum tagging and
//! `#[serde(default)]` support, so JSON produced by the `serde_json`
//! shim matches what real serde+serde_json would emit for the shapes
//! this workspace uses.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; JSON numbers up to u64::MAX).
    U64(u64),
    /// Negative integer (kept exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Alias for [`Value::get_field`] (serde_json spelling).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.get_field(key)
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Signed view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (matches `serde_json::to_string`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn escape(s: &str, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("\"")?;
            for ch in s.chars() {
                match ch {
                    '"' => f.write_str("\\\"")?,
                    '\\' => f.write_str("\\\\")?,
                    '\n' => f.write_str("\\n")?,
                    '\r' => f.write_str("\\r")?,
                    '\t' => f.write_str("\\t")?,
                    c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                    c => write!(f, "{c}")?,
                }
            }
            f.write_str("\"")
        }
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) if x.is_finite() => {
                let s = x.to_string();
                f.write_str(&s)?;
                if !s.contains(['.', 'e', 'E']) {
                    f.write_str(".0")?;
                }
                Ok(())
            }
            Value::F64(_) => f.write_str("null"),
            Value::Str(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self(msg.to_string())
    }

    /// Missing required field.
    pub fn missing(field: &str) -> Self {
        Self(format!("missing field `{field}`"))
    }

    /// Type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned variant mirroring serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! unsigned_value {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

unsigned_value!(u8, u16, u32, u64, usize);

macro_rules! signed_value {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

signed_value!(i8, i16, i32, i64, isize);

macro_rules! float_value {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

float_value!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_value {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let mut it = items.iter();
                let out = ($(
                    $t::from_value(it.next().ok_or_else(|| DeError::custom("tuple too short"))?)?,
                )+);
                Ok(out)
            }
        }
    )+};
}

tuple_value!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Map keys must render to / parse from JSON object keys.
pub trait MapKey: Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!("bad map key {s:?}")))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is random).
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = v
            .get_field("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::missing("secs"))?;
        let nanos = v.get_field("nanos").and_then(Value::as_u64).unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
    }
}
