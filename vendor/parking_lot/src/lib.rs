//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the small API subset the workspace uses — `Mutex` and
//! `RwLock` with panic-free (poison-ignoring) guards — backed by
//! `std::sync`. Semantics match parking_lot where it matters here:
//! `lock()` returns a guard directly instead of a `Result`.

// Shim code mirrors external-crate APIs; keep clippy out of it.
#![allow(clippy::all)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, poison-transparent).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
